//! Classic graph tasks over noisy beeps — the paper's headline use case,
//! with Theorem 21's maximal matching as the flagship.

use crate::error::AppError;
use beep_congest::algorithms::{LubyMis, MaximalMatching, RandomColoring};
use beep_congest::validate;
use beep_core::{SimReport, SimulatedBroadcastRunner, SimulationParams};
use beep_net::{ChannelModel, FaultPlan, Graph, NodeId, Noise, NoiseModel};

/// A solved task together with its cost accounting.
#[derive(Debug, Clone)]
pub struct TaskReport<T> {
    /// Per-node outputs.
    pub output: Vec<T>,
    /// Simulation accounting (beep rounds, overheads, decode stats).
    pub report: SimReport,
}

/// Maps a caller-supplied noise rate to a channel through the fallible
/// constructor: `ε = 0` is the noiseless model, anything else must lie in
/// the paper's open interval `(0, ½)` or the task returns
/// [`AppError::Net`] instead of panicking deep inside the engine.
fn noise_for(epsilon: f64) -> Result<Noise, AppError> {
    if epsilon == 0.0 {
        Ok(Noise::Noiseless)
    } else {
        Ok(Noise::try_bernoulli(epsilon)?)
    }
}

/// The `ε`-based task entry points run on the paper's iid channel; this
/// builds it as a [`ChannelModel`] for the `*_with_channel` cores.
fn iid_channel(epsilon: f64) -> Result<ChannelModel, AppError> {
    Ok(ChannelModel::from(noise_for(epsilon)?))
}

/// Maximal matching in the noisy beeping model (Theorem 21):
/// `O(Δ log² n)` beep rounds, output validated for symmetry and
/// maximality before returning.
///
/// `output[v]` is `Some(partner)` or `None` for unmatched.
///
/// # Errors
///
/// * [`AppError::Sim`] on simulation failures (budget, widths, …).
/// * [`AppError::InvalidOutput`] if the (with-high-probability) guarantee
///   failed this run — possible under noise, rerun with another seed.
pub fn maximal_matching(
    graph: &Graph,
    epsilon: f64,
    seed: u64,
) -> Result<TaskReport<Option<NodeId>>, AppError> {
    maximal_matching_with_channel(graph, &iid_channel(epsilon)?, seed)
}

/// [`maximal_matching`] under an arbitrary [`ChannelModel`]: the
/// simulation parameters are calibrated to the channel's
/// [`calibration_epsilon`](NoiseModel::calibration_epsilon) (its
/// worst-case iid-equivalent rate), and the run is deterministic in
/// `(graph, channel, seed)`.
///
/// # Errors
///
/// As [`maximal_matching`].
pub fn maximal_matching_with_channel(
    graph: &Graph,
    channel: &ChannelModel,
    seed: u64,
) -> Result<TaskReport<Option<NodeId>>, AppError> {
    maximal_matching_with_faults(graph, channel, &FaultPlan::none(), seed)
}

/// [`maximal_matching_with_channel`] under a [`FaultPlan`]: the plan is
/// installed on the underlying beep network, so faulty nodes' beeps are
/// overridden exactly as in [`beep_net::BeepNetwork::set_fault_plan`].
///
/// The output validation still covers *all* nodes — this protocol has no
/// fault-tolerance story ([`crate::Protocol::supports_faults`] is false
/// for it), so a non-empty plan typically ends in
/// [`AppError::InvalidOutput`]; the variant exists so the fault plumbing
/// lands in one place and overlay costs can be measured on the same code
/// path.
///
/// # Errors
///
/// As [`maximal_matching`], plus [`AppError::Net`] if the plan names a
/// node `≥ n`.
pub fn maximal_matching_with_faults(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<TaskReport<Option<NodeId>>, AppError> {
    let n = graph.node_count();
    let bits = MaximalMatching::required_message_bits(n);
    let iters = MaximalMatching::suggested_iterations(n);
    let params = SimulationParams::calibrated(channel.calibration_epsilon());
    let runner = SimulatedBroadcastRunner::new(graph, bits, seed, params, channel.clone())
        .with_fault_plan(faults.clone());
    let mut algos: Vec<Box<MaximalMatching>> = (0..n)
        .map(|_| Box::new(MaximalMatching::new(iters)))
        .collect();
    let report = runner.run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))?;
    let output: Vec<Option<NodeId>> = algos
        .iter()
        .map(|a| a.output().expect("runner completed"))
        .collect();
    let violations = validate::check_matching(graph, &output);
    if !violations.is_empty() {
        return Err(AppError::InvalidOutput {
            detail: format!("{violations:?}"),
        });
    }
    Ok(TaskReport { output, report })
}

/// Maximal independent set over noisy beeps (Luby's algorithm under the
/// Theorem 11 simulation). `output[v]` is `true` iff `v` is in the set.
///
/// # Errors
///
/// As [`maximal_matching`].
pub fn maximal_independent_set(
    graph: &Graph,
    epsilon: f64,
    seed: u64,
) -> Result<TaskReport<bool>, AppError> {
    maximal_independent_set_with_channel(graph, &iid_channel(epsilon)?, seed)
}

/// [`maximal_independent_set`] under an arbitrary [`ChannelModel`] (see
/// [`maximal_matching_with_channel`] for the calibration convention).
///
/// # Errors
///
/// As [`maximal_matching`].
pub fn maximal_independent_set_with_channel(
    graph: &Graph,
    channel: &ChannelModel,
    seed: u64,
) -> Result<TaskReport<bool>, AppError> {
    maximal_independent_set_with_faults(graph, channel, &FaultPlan::none(), seed)
}

/// [`maximal_independent_set_with_channel`] under a [`FaultPlan`] (see
/// [`maximal_matching_with_faults`] for the caveats — validation still
/// covers all nodes).
///
/// # Errors
///
/// As [`maximal_matching_with_faults`].
pub fn maximal_independent_set_with_faults(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<TaskReport<bool>, AppError> {
    let n = graph.node_count();
    let bits = LubyMis::required_message_bits(n);
    let iters = LubyMis::suggested_iterations(n);
    let params = SimulationParams::calibrated(channel.calibration_epsilon());
    let runner = SimulatedBroadcastRunner::new(graph, bits, seed, params, channel.clone())
        .with_fault_plan(faults.clone());
    let mut algos: Vec<Box<LubyMis>> = (0..n).map(|_| Box::new(LubyMis::new(iters))).collect();
    let report = runner.run_to_completion(&mut algos, LubyMis::rounds_for(iters))?;
    let output: Vec<bool> = algos
        .iter()
        .map(|a| a.output().expect("completed"))
        .collect();
    let violations = validate::check_mis(graph, &output);
    if !violations.is_empty() {
        return Err(AppError::InvalidOutput {
            detail: format!("{violations:?}"),
        });
    }
    Ok(TaskReport { output, report })
}

/// (Δ+1)-coloring over noisy beeps. `output[v]` is `v`'s color in
/// `{0, …, Δ}`.
///
/// # Errors
///
/// As [`maximal_matching`].
pub fn coloring(graph: &Graph, epsilon: f64, seed: u64) -> Result<TaskReport<u64>, AppError> {
    coloring_with_channel(graph, &iid_channel(epsilon)?, seed)
}

/// [`coloring`] under an arbitrary [`ChannelModel`] (see
/// [`maximal_matching_with_channel`] for the calibration convention).
///
/// # Errors
///
/// As [`maximal_matching`].
pub fn coloring_with_channel(
    graph: &Graph,
    channel: &ChannelModel,
    seed: u64,
) -> Result<TaskReport<u64>, AppError> {
    coloring_with_faults(graph, channel, &FaultPlan::none(), seed)
}

/// [`coloring_with_channel`] under a [`FaultPlan`] (see
/// [`maximal_matching_with_faults`] for the caveats — validation still
/// covers all nodes).
///
/// # Errors
///
/// As [`maximal_matching_with_faults`].
pub fn coloring_with_faults(
    graph: &Graph,
    channel: &ChannelModel,
    faults: &FaultPlan,
    seed: u64,
) -> Result<TaskReport<u64>, AppError> {
    let n = graph.node_count();
    let bits = RandomColoring::required_message_bits(n);
    let iters = RandomColoring::suggested_iterations(n);
    let params = SimulationParams::calibrated(channel.calibration_epsilon());
    let runner = SimulatedBroadcastRunner::new(graph, bits, seed, params, channel.clone())
        .with_fault_plan(faults.clone());
    let mut algos: Vec<Box<RandomColoring>> = (0..n)
        .map(|_| Box::new(RandomColoring::new(iters)))
        .collect();
    let report = runner.run_to_completion(&mut algos, RandomColoring::rounds_for(iters))?;
    let maybe: Vec<Option<u64>> = algos.iter().map(|a| a.output()).collect();
    let violations = validate::check_coloring(graph, &maybe);
    if !violations.is_empty() {
        return Err(AppError::InvalidOutput {
            detail: format!("{violations:?}"),
        });
    }
    let output = maybe
        .into_iter()
        .map(|c| c.expect("validated total"))
        .collect();
    Ok(TaskReport { output, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_net::topology;

    #[test]
    fn matching_on_noisy_cycle() {
        let g = topology::cycle(6).unwrap();
        let result = maximal_matching(&g, 0.05, 5).unwrap();
        assert_eq!(result.output.len(), 6);
        // Validation already ran inside; spot-check the overhead claim.
        assert_eq!(
            result.report.beep_rounds,
            result.report.congest_rounds * result.report.beep_rounds_per_congest_round
        );
    }

    #[test]
    fn matching_on_noiseless_star() {
        let g = topology::star(5).unwrap();
        let result = maximal_matching(&g, 0.0, 1).unwrap();
        // Star: exactly one leaf matches the hub.
        let matched = result.output.iter().filter(|o| o.is_some()).count();
        assert_eq!(matched, 2);
        assert!(result.report.stats.all_perfect());
    }

    #[test]
    fn mis_on_noisy_path() {
        let g = topology::path(7).unwrap();
        let result = maximal_independent_set(&g, 0.05, 2).unwrap();
        assert!(result.output.iter().any(|&b| b));
    }

    #[test]
    fn coloring_on_noisy_triangle() {
        let g = topology::complete(3).unwrap();
        let result = coloring(&g, 0.05, 3).unwrap();
        let mut colors = result.output.clone();
        colors.sort_unstable();
        colors.dedup();
        assert_eq!(colors.len(), 3, "K₃ needs 3 distinct colors");
    }

    #[test]
    fn invalid_noise_rate_is_an_error_not_a_panic() {
        let g = topology::path(4).unwrap();
        for bad in [0.5, 0.75, -0.1] {
            let err = maximal_matching(&g, bad, 0).unwrap_err();
            assert!(
                matches!(err, AppError::Net(beep_net::NetError::InvalidNoise { .. })),
                "ε = {bad}: {err}"
            );
        }
    }

    #[test]
    fn fault_variant_with_empty_plan_matches_channel_variant() {
        let g = topology::cycle(6).unwrap();
        let ch: ChannelModel = Noise::try_bernoulli(0.05).unwrap().into();
        let a = maximal_matching_with_channel(&g, &ch, 5).unwrap();
        let b = maximal_matching_with_faults(&g, &ch, &FaultPlan::none(), 5).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn muting_every_node_defeats_matching_detectably() {
        // These tasks have no fault-tolerance story: with all nodes muted
        // nothing is ever decoded and the validated guarantee must fail
        // as a reportable error, not silently pass or panic.
        let g = topology::cycle(6).unwrap();
        let ch: ChannelModel = Noise::Noiseless.into();
        let plan = FaultPlan::realize(6, 1.0, beep_net::FaultKind::ByzantineMute, 1).unwrap();
        match maximal_matching_with_faults(&g, &ch, &plan, 5) {
            Err(AppError::InvalidOutput { .. } | AppError::Sim(_)) => {}
            other => panic!("expected a detectable failure, got {other:?}"),
        }
    }

    #[test]
    fn isolated_vertices_are_handled() {
        let g = beep_net::Graph::from_edges(4, &[(0, 1)]).unwrap();
        let m = maximal_matching(&g, 0.0, 4).unwrap();
        assert_eq!(m.output[2], None);
        assert_eq!(m.output[3], None);
        let s = maximal_independent_set(&g, 0.0, 4).unwrap();
        assert!(s.output[2] && s.output[3]);
    }
}
