//! The combined code `CD(r, m)` (Notation 7, Figure 1): a distance codeword
//! written into the 1-positions of a beep codeword.

use crate::error::CodeError;
use crate::{BeepCode, DistanceCode};
use beep_bits::BitVec;

/// The paper's combined code
/// `CD : {0,1}^a_beep × {0,1}^a_msg → {0,1}^b_beep`:
///
/// ```text
/// CD(r, m)_j = 1  iff  j = 1_i(C(r)) for some i and D(m)_i = 1
/// ```
///
/// i.e. the `i`-th bit of the distance codeword `D(m)` is placed at the
/// position of the `i`-th one of the beep codeword `C(r)`; all other
/// positions are 0 (Figure 1). This requires the beep code's weight to equal
/// the distance code's length, which the paper arranges by construction
/// (both are `c_ε²·γ·log n`).
///
/// In Algorithm 1's second phase every node beeps `CD(r_v, m_v)`; a neighbor
/// that learned `C(r_v)` in the first phase projects what it hears onto the
/// 1-positions of `C(r_v)` ([`CombinedCode::project`]) and decodes the
/// result against the distance code.
#[derive(Debug, Clone)]
pub struct CombinedCode {
    beep: BeepCode,
    distance: DistanceCode,
}

impl CombinedCode {
    /// Pairs a beep code with a distance code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CarrierPayloadMismatch`] unless
    /// `beep.params().weight() == distance.params().length()`.
    pub fn new(beep: BeepCode, distance: DistanceCode) -> Result<Self, CodeError> {
        if beep.params().weight() != distance.params().length() {
            return Err(CodeError::CarrierPayloadMismatch {
                carrier_weight: beep.params().weight(),
                payload_len: distance.params().length(),
            });
        }
        Ok(CombinedCode { beep, distance })
    }

    /// The underlying beep code `C`.
    #[must_use]
    pub fn beep_code(&self) -> &BeepCode {
        &self.beep
    }

    /// The underlying distance code `D`.
    #[must_use]
    pub fn distance_code(&self) -> &DistanceCode {
        &self.distance
    }

    /// Computes `CD(r, m)`: encodes `r` with the beep code, `m` with the
    /// distance code, and combines them.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `m` has the wrong length for its code.
    #[must_use]
    pub fn encode(&self, r: &BitVec, m: &BitVec) -> BitVec {
        let carrier = self.beep.encode(r);
        let payload = self.distance.encode(m);
        Self::combine(&carrier, &payload)
            .unwrap_or_else(|e| unreachable!("weights checked at construction: {e}"))
    }

    /// The structural combination step: writes `payload` into the
    /// 1-positions of `carrier` (Figure 1), independent of any code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CarrierPayloadMismatch`] if
    /// `carrier.count_ones() != payload.len()`.
    pub fn combine(carrier: &BitVec, payload: &BitVec) -> Result<BitVec, CodeError> {
        let weight = carrier.count_ones();
        if weight != payload.len() {
            return Err(CodeError::CarrierPayloadMismatch {
                carrier_weight: weight,
                payload_len: payload.len(),
            });
        }
        let mut out = BitVec::zeros(carrier.len());
        for (i, pos) in carrier.iter_ones().enumerate() {
            if payload.get(i) {
                out.set(pos, true);
            }
        }
        Ok(out)
    }

    /// The decoder-side projection: extracts from a received string the
    /// subsequence at the 1-positions of `carrier` — the paper's `y_{v,w}`
    /// (Lemma 10). The result has length `carrier.count_ones()` and is what
    /// gets matched against distance codewords.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ReceivedLength`] if `received` is not the same
    /// length as `carrier`.
    pub fn project(received: &BitVec, carrier: &BitVec) -> Result<BitVec, CodeError> {
        if received.len() != carrier.len() {
            return Err(CodeError::ReceivedLength {
                expected: carrier.len(),
                actual: received.len(),
            });
        }
        Ok(received.extract_mask(carrier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeepCodeParams, DistanceCodeParams};

    fn codes() -> CombinedCode {
        // beep: a=6, k=3, c=5 → length 450, weight 30.
        let beep = BeepCode::with_seed(BeepCodeParams::new(6, 3, 5).unwrap(), 3);
        // distance: 10-bit messages, length 30 == beep weight.
        let dist = DistanceCode::with_seed(DistanceCodeParams::with_length(10, 30).unwrap(), 3);
        CombinedCode::new(beep, dist).unwrap()
    }

    #[test]
    fn mismatched_weights_rejected() {
        let beep = BeepCode::new(BeepCodeParams::new(6, 3, 5).unwrap()); // weight 30
        let dist = DistanceCode::new(DistanceCodeParams::with_length(10, 29).unwrap());
        assert!(matches!(
            CombinedCode::new(beep, dist),
            Err(CodeError::CarrierPayloadMismatch {
                carrier_weight: 30,
                payload_len: 29
            })
        ));
    }

    #[test]
    fn combined_is_subset_of_carrier() {
        let cc = codes();
        let r = BitVec::from_u64_lsb(0b10_1101, 6);
        let m = BitVec::from_u64_lsb(0x17F, 10);
        let cd = cc.encode(&r, &m);
        let carrier = cc.beep_code().encode(&r);
        assert!(cd.is_subset_of(&carrier));
        assert_eq!(cd.len(), carrier.len());
    }

    #[test]
    fn notation7_structure_holds() {
        // CD(r,m) has a 1 at position 1_i(C(r)) exactly when D(m)_i = 1.
        let cc = codes();
        let r = BitVec::from_u64_lsb(0b01_0011, 6);
        let m = BitVec::from_u64_lsb(0x2A5, 10);
        let cd = cc.encode(&r, &m);
        let carrier = cc.beep_code().encode(&r);
        let payload = cc.distance_code().encode(&m);
        for (i, pos) in carrier.iter_ones().enumerate() {
            assert_eq!(
                cd.get(pos),
                payload.get(i),
                "payload bit {i} at carrier pos {pos}"
            );
        }
        // And 0 everywhere the carrier is 0.
        for pos in (!&carrier).iter_ones() {
            assert!(!cd.get(pos), "position {pos} outside carrier must be 0");
        }
    }

    #[test]
    fn project_inverts_combine_without_noise() {
        let cc = codes();
        let r = BitVec::from_u64_lsb(0b11_1000, 6);
        let m = BitVec::from_u64_lsb(0x0F3, 10);
        let cd = cc.encode(&r, &m);
        let carrier = cc.beep_code().encode(&r);
        let projected = CombinedCode::project(&cd, &carrier).unwrap();
        assert_eq!(projected, cc.distance_code().encode(&m));
    }

    #[test]
    fn combine_rejects_bad_payload_len() {
        let carrier = BitVec::from_indices(10, [1, 3, 5]);
        let payload = BitVec::zeros(4);
        assert!(CombinedCode::combine(&carrier, &payload).is_err());
    }

    #[test]
    fn project_rejects_bad_received_len() {
        let carrier = BitVec::from_indices(10, [1, 3, 5]);
        let received = BitVec::zeros(11);
        assert!(matches!(
            CombinedCode::project(&received, &carrier),
            Err(CodeError::ReceivedLength {
                expected: 10,
                actual: 11
            })
        ));
    }

    #[test]
    fn combine_zero_payload_gives_zero_string() {
        let carrier = BitVec::from_indices(8, [0, 4, 7]);
        let payload = BitVec::zeros(3);
        let out = CombinedCode::combine(&carrier, &payload).unwrap();
        assert_eq!(out.count_ones(), 0);
    }
}
