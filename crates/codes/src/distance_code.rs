//! Distance codes (Definition 5, Lemma 6): random binary codes with large
//! pairwise Hamming distance.

use crate::error::CodeError;
use crate::prf;
use beep_bits::BitVec;

/// Parameters of an `(a, δ)`-distance code of length `b = c_δ·a` (Lemma 6).
///
/// Lemma 6 shows a uniformly random code achieves pairwise distance `≥ δb`
/// with probability `≥ 1 − 2⁻²ᵃ` whenever `c_δ ≥ 12(1−2δ)⁻²`. The paper's
/// simulation instantiates `δ = 1/3` and length `c_ε²·γ·log n` so the
/// distance codeword fits exactly into the 1-positions of a beep codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DistanceCodeParams {
    message_bits: usize,
    length: usize,
}

impl DistanceCodeParams {
    /// Creates distance-code parameters (`a` message bits, length `c_δ·a`).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if either parameter is zero or
    /// the length overflows.
    pub fn new(message_bits: usize, expansion: usize) -> Result<Self, CodeError> {
        if message_bits == 0 {
            return Err(CodeError::InvalidParams {
                what: "message_bits",
                detail: "must be at least 1".into(),
            });
        }
        if expansion == 0 {
            return Err(CodeError::InvalidParams {
                what: "expansion",
                detail: "must be at least 1".into(),
            });
        }
        message_bits
            .checked_mul(expansion)
            .ok_or_else(|| CodeError::InvalidParams {
                what: "length",
                detail: format!("c_δ·a overflows usize (c_δ={expansion}, a={message_bits})"),
            })?;
        let length = message_bits * expansion;
        Ok(DistanceCodeParams {
            message_bits,
            length,
        })
    }

    /// Creates parameters with an explicit code length instead of an
    /// expansion factor; `length` is used exactly as given.
    ///
    /// This is needed by the combined code, where the distance-code length
    /// must equal the beep-code weight exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `length < message_bits` or
    /// either is zero.
    pub fn with_length(message_bits: usize, length: usize) -> Result<Self, CodeError> {
        if message_bits == 0 {
            return Err(CodeError::InvalidParams {
                what: "message_bits",
                detail: "must be at least 1".into(),
            });
        }
        if length < message_bits {
            return Err(CodeError::InvalidParams {
                what: "length",
                detail: format!("length {length} shorter than message ({message_bits} bits)"),
            });
        }
        Ok(DistanceCodeParams {
            message_bits,
            length,
        })
    }

    /// `a`: the number of message bits encoded.
    #[must_use]
    pub fn message_bits(&self) -> usize {
        self.message_bits
    }

    /// `c_δ`: the rate expansion factor, rounded down when the length was
    /// given explicitly.
    #[must_use]
    pub fn expansion(&self) -> usize {
        self.length / self.message_bits
    }

    /// Code length `b`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// The Definition 5 distance target `δ·b` for a given `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 0.5)`.
    #[must_use]
    pub fn distance_target(&self, delta: f64) -> usize {
        assert!(
            delta > 0.0 && delta < 0.5,
            "δ = {delta} outside (0, 1/2) (Definition 5)"
        );
        (delta * self.length() as f64).floor() as usize
    }

    /// Whether these parameters satisfy Lemma 6's sufficient condition
    /// `c_δ ≥ 12(1−2δ)⁻²` for the random construction to succeed w.h.p.
    ///
    /// The calibrated simulation profile intentionally violates this (the
    /// constant 12 is a Chernoff artifact); see `beep-core::params`.
    #[must_use]
    pub fn meets_lemma6_condition(&self, delta: f64) -> bool {
        assert!(delta > 0.0 && delta < 0.5);
        self.expansion() as f64 >= 12.0 / ((1.0 - 2.0 * delta) * (1.0 - 2.0 * delta))
    }
}

/// An `(a, δ)`-distance code: a deterministic map from `{0,1}^a` messages to
/// length-`b` codewords, each drawn uniformly at random (Lemma 6's
/// construction), derandomized through the shared-seed PRF.
#[derive(Debug, Clone)]
pub struct DistanceCode {
    params: DistanceCodeParams,
    seed: u64,
}

/// Domain-separation tag for distance-code codeword derivation.
const DIST_TAG: u64 = 0xD157_C0DE;

impl DistanceCode {
    /// Creates the code with the default seed.
    #[must_use]
    pub fn new(params: DistanceCodeParams) -> Self {
        Self::with_seed(params, 0)
    }

    /// Creates the code with an explicit seed.
    #[must_use]
    pub fn with_seed(params: DistanceCodeParams, seed: u64) -> Self {
        DistanceCode { params, seed }
    }

    /// The code's parameters.
    #[must_use]
    pub fn params(&self) -> DistanceCodeParams {
        self.params
    }

    /// The seed identifying this concrete code.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Encodes an `a`-bit message into its codeword `D(m)`.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != params.message_bits()`.
    #[must_use]
    pub fn encode(&self, message: &BitVec) -> BitVec {
        self.try_encode(message)
            .unwrap_or_else(|e| panic!("DistanceCode::encode: {e}"))
    }

    /// Encodes an `a`-bit message, or reports a length error.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InputLength`] on a length mismatch.
    pub fn try_encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        if message.len() != self.params.message_bits {
            return Err(CodeError::InputLength {
                expected: self.params.message_bits,
                actual: message.len(),
            });
        }
        let mut rng = prf::derive_rng(self.seed, DIST_TAG, message);
        Ok(BitVec::random_uniform(self.params.length(), &mut rng))
    }

    /// Convenience: encodes the low `a` bits of an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `a` bits.
    #[must_use]
    pub fn encode_u64(&self, value: u64) -> BitVec {
        self.encode(&BitVec::from_u64_lsb(value, self.params.message_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_formulas() {
        let p = DistanceCodeParams::new(20, 9).unwrap();
        assert_eq!(p.length(), 180);
        assert_eq!(p.distance_target(1.0 / 3.0), 60);
        assert!(!p.meets_lemma6_condition(1.0 / 3.0)); // needs c ≥ 108
        let strict = DistanceCodeParams::new(4, 108).unwrap();
        assert!(strict.meets_lemma6_condition(1.0 / 3.0));
    }

    #[test]
    fn with_length_divides() {
        let p = DistanceCodeParams::with_length(10, 250).unwrap();
        assert_eq!(p.length(), 250);
        assert_eq!(p.expansion(), 25);
    }

    #[test]
    fn with_length_too_short_rejected() {
        assert!(DistanceCodeParams::with_length(10, 9).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(DistanceCodeParams::new(0, 1).is_err());
        assert!(DistanceCodeParams::new(1, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "outside (0, 1/2)")]
    fn delta_out_of_range_panics() {
        let _ = DistanceCodeParams::new(4, 10).unwrap().distance_target(0.5);
    }

    #[test]
    fn encode_deterministic_and_message_sensitive() {
        let p = DistanceCodeParams::new(16, 12).unwrap();
        let code = DistanceCode::with_seed(p, 9);
        let m1 = BitVec::from_u64_lsb(0x1234, 16);
        let m2 = BitVec::from_u64_lsb(0x1235, 16);
        assert_eq!(code.encode(&m1), code.encode(&m1));
        assert_ne!(code.encode(&m1), code.encode(&m2));
        assert_eq!(code.encode(&m1).len(), 192);
    }

    #[test]
    fn random_codewords_are_far_apart() {
        // Sanity check on Lemma 6's conclusion at small scale: with
        // c_δ = 12, random pairs should comfortably exceed distance b/3.
        let p = DistanceCodeParams::new(16, 12).unwrap();
        let code = DistanceCode::with_seed(p, 4);
        let target = p.distance_target(1.0 / 3.0);
        for v in 0..100u64 {
            let d = code.encode_u64(v).hamming_distance(&code.encode_u64(v + 1));
            assert!(
                d >= target,
                "pair ({v},{}) at distance {d} < {target}",
                v + 1
            );
        }
    }

    #[test]
    fn try_encode_rejects_wrong_length() {
        let p = DistanceCodeParams::new(8, 4).unwrap();
        let code = DistanceCode::new(p);
        assert!(matches!(
            code.try_encode(&BitVec::zeros(7)),
            Err(CodeError::InputLength {
                expected: 8,
                actual: 7
            })
        ));
    }
}
