//! Decoders for the paper's two phases (Section 4).
//!
//! * [`SetDecoder`] implements the Lemma 9 rule: from a noisy superimposition
//!   `x̃_v`, recover the *set* of beep codewords transmitted by the
//!   neighborhood — accept candidate `r` iff `C(r)` does **not**
//!   `τ`-intersect `¬x̃_v`, with `τ = (2ε+1)/4 · weight`.
//! * [`MessageDecoder`] implements the Lemma 10 rule: decode a projected
//!   phase-2 string `ỹ_{v,w}` to the message whose distance codeword is
//!   nearest in Hamming distance.
//!
//! Both decoders come in two flavors:
//!
//! * **candidate decoding** — score an explicit candidate list. This is what
//!   the network simulator uses: scoring every node's codeword plus random
//!   decoys measures exactly the error events Lemmas 8–10 bound, without the
//!   `2^a` enumeration the paper's information-theoretic decoder performs
//!   (see DESIGN.md §3, substitution 2).
//! * **exhaustive decoding** — enumerate the full input space; exact but
//!   exponential, intended for validating the candidate decoder at small
//!   sizes and for tests.

use crate::error::CodeError;
use crate::{BeepCode, DistanceCode};
use beep_bits::BitVec;

/// Upper limit on input bits for exhaustive decoding (2^24 codeword
/// evaluations is the largest that stays interactive in debug builds).
const EXHAUSTIVE_LIMIT_BITS: usize = 24;

/// Phase-1 set decoder (Lemma 9).
#[derive(Debug, Clone)]
pub struct SetDecoder<'a> {
    code: &'a BeepCode,
    threshold: usize,
}

impl<'a> SetDecoder<'a> {
    /// Creates the decoder with the paper's threshold
    /// `(2ε+1)/4 · weight` for noise rate `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 0.5)`.
    #[must_use]
    pub fn new(code: &'a BeepCode, epsilon: f64) -> Self {
        let threshold = code.params().decode_threshold(epsilon);
        SetDecoder { code, threshold }
    }

    /// Creates the decoder with an explicit acceptance threshold (used by
    /// calibration sweeps).
    #[must_use]
    pub fn with_threshold(code: &'a BeepCode, threshold: usize) -> Self {
        SetDecoder { code, threshold }
    }

    /// The acceptance threshold in use.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Whether a given codeword is accepted as "present" in the received
    /// string: fewer than `threshold` of its 1s fall where `received` is 0.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (callers hold strings from the same code).
    #[must_use]
    pub fn accepts_codeword(&self, codeword: &BitVec, received: &BitVec) -> bool {
        codeword.and_not_count(received) < self.threshold
    }

    /// Whether the codeword of input `r` is accepted as present.
    #[must_use]
    pub fn accepts(&self, r: &BitVec, received: &BitVec) -> bool {
        self.accepts_codeword(&self.code.encode(r), received)
    }

    /// Filters a candidate list down to the accepted inputs, preserving
    /// order. This is the simulator's decoder: candidates are all inputs in
    /// play (plus decoys for false-positive estimation).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ReceivedLength`] if `received` is not one
    /// codeword long.
    pub fn decode_candidates<'b>(
        &self,
        received: &BitVec,
        candidates: impl IntoIterator<Item = &'b BitVec>,
    ) -> Result<Vec<BitVec>, CodeError> {
        if received.len() != self.code.params().length() {
            return Err(CodeError::ReceivedLength {
                expected: self.code.params().length(),
                actual: received.len(),
            });
        }
        Ok(candidates
            .into_iter()
            .filter(|r| self.accepts(r, received))
            .cloned()
            .collect())
    }

    /// Exhaustively decodes by enumerating all `2^a` inputs — the paper's
    /// information-theoretic decoder, exact but exponential.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `a >` 24 bits, and
    /// [`CodeError::ReceivedLength`] on a length mismatch.
    pub fn decode_exhaustive(&self, received: &BitVec) -> Result<Vec<BitVec>, CodeError> {
        let a = self.code.params().input_bits();
        if a > EXHAUSTIVE_LIMIT_BITS {
            return Err(CodeError::InvalidParams {
                what: "input_bits",
                detail: format!(
                    "exhaustive decoding caps at {EXHAUSTIVE_LIMIT_BITS} bits, code has {a}"
                ),
            });
        }
        if received.len() != self.code.params().length() {
            return Err(CodeError::ReceivedLength {
                expected: self.code.params().length(),
                actual: received.len(),
            });
        }
        let mut out = Vec::new();
        for v in 0..(1u64 << a) {
            let r = BitVec::from_u64_lsb(v, a);
            if self.accepts(&r, received) {
                out.push(r);
            }
        }
        Ok(out)
    }
}

/// A decoded phase-2 message with its decoding evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedMessage {
    /// The recovered message (the candidate with minimum Hamming distance).
    pub message: BitVec,
    /// Hamming distance between the received projection and the winner's
    /// distance codeword.
    pub distance: usize,
    /// Distance of the runner-up minus distance of the winner — the decoding
    /// margin. `None` when only one candidate was scored. Lemma 10's
    /// analysis corresponds to this margin staying positive.
    pub margin: Option<usize>,
}

/// Phase-2 message decoder (Lemma 10): nearest-codeword decoding of the
/// projected string `ỹ_{v,w}` against the distance code.
#[derive(Debug, Clone)]
pub struct MessageDecoder<'a> {
    code: &'a DistanceCode,
}

impl<'a> MessageDecoder<'a> {
    /// Creates a decoder over the given distance code.
    #[must_use]
    pub fn new(code: &'a DistanceCode) -> Self {
        MessageDecoder { code }
    }

    /// Decodes by scoring an explicit candidate message list, returning the
    /// nearest. Ties break toward the earlier candidate (deterministic).
    ///
    /// # Errors
    ///
    /// * [`CodeError::NoCandidates`] if the list is empty.
    /// * [`CodeError::ReceivedLength`] if `received` is not one distance
    ///   codeword long.
    pub fn decode_candidates<'b>(
        &self,
        received: &BitVec,
        candidates: impl IntoIterator<Item = &'b BitVec>,
    ) -> Result<DecodedMessage, CodeError> {
        if received.len() != self.code.params().length() {
            return Err(CodeError::ReceivedLength {
                expected: self.code.params().length(),
                actual: received.len(),
            });
        }
        let mut best: Option<(usize, &BitVec)> = None;
        let mut runner_up: Option<usize> = None;
        for m in candidates {
            let d = self.code.encode(m).hamming_distance(received);
            match best {
                None => best = Some((d, m)),
                Some((bd, _)) if d < bd => {
                    runner_up = Some(bd);
                    best = Some((d, m));
                }
                Some(_) => {
                    runner_up = Some(runner_up.map_or(d, |r| r.min(d)));
                }
            }
        }
        let (distance, message) = best.ok_or(CodeError::NoCandidates)?;
        Ok(DecodedMessage {
            message: message.clone(),
            distance,
            margin: runner_up.map(|r| r - distance),
        })
    }

    /// Exhaustively decodes over all `2^a` messages.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if the message space exceeds 24
    /// bits, and [`CodeError::ReceivedLength`] on a length mismatch.
    pub fn decode_exhaustive(&self, received: &BitVec) -> Result<DecodedMessage, CodeError> {
        let a = self.code.params().message_bits();
        if a > EXHAUSTIVE_LIMIT_BITS {
            return Err(CodeError::InvalidParams {
                what: "message_bits",
                detail: format!(
                    "exhaustive decoding caps at {EXHAUSTIVE_LIMIT_BITS} bits, code has {a}"
                ),
            });
        }
        let all: Vec<BitVec> = (0..(1u64 << a))
            .map(|v| BitVec::from_u64_lsb(v, a))
            .collect();
        self.decode_candidates(received, all.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeepCodeParams, DistanceCodeParams};
    use beep_bits::superimpose;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn beep_code() -> BeepCode {
        BeepCode::with_seed(BeepCodeParams::new(8, 4, 7).unwrap(), 11)
    }

    fn dist_code() -> DistanceCode {
        DistanceCode::with_seed(DistanceCodeParams::new(8, 16).unwrap(), 11)
    }

    #[test]
    fn set_decoder_recovers_transmitted_set_noiseless() {
        let code = beep_code();
        let decoder = SetDecoder::new(&code, 0.0);
        let inputs: Vec<BitVec> = [3u64, 77, 200, 141]
            .iter()
            .map(|&v| BitVec::from_u64_lsb(v, 8))
            .collect();
        let codewords: Vec<BitVec> = inputs.iter().map(|r| code.encode(r)).collect();
        let received = superimpose(&codewords).unwrap();
        // All transmitted inputs accepted.
        for r in &inputs {
            assert!(decoder.accepts(r, &received), "transmitted {r:?} rejected");
        }
        // Candidate decode over transmitted + non-transmitted returns
        // exactly the transmitted set (w.h.p. at these parameters).
        let mut candidates = inputs.clone();
        for v in [0u64, 1, 2, 99, 255] {
            candidates.push(BitVec::from_u64_lsb(v, 8));
        }
        let decoded = decoder.decode_candidates(&received, &candidates).unwrap();
        assert_eq!(decoded, inputs);
    }

    #[test]
    fn set_decoder_exhaustive_matches_candidates() {
        // Tiny code so exhaustive decode is fast.
        let params = BeepCodeParams::new(6, 3, 7).unwrap();
        let code = BeepCode::with_seed(params, 5);
        let decoder = SetDecoder::new(&code, 0.0);
        let inputs: Vec<BitVec> = [5u64, 33, 60]
            .iter()
            .map(|&v| BitVec::from_u64_lsb(v, 6))
            .collect();
        let received = superimpose(
            inputs
                .iter()
                .map(|r| code.encode(r))
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap();
        let exhaustive = decoder.decode_exhaustive(&received).unwrap();
        assert_eq!(exhaustive, inputs.to_vec());
    }

    #[test]
    fn set_decoder_survives_noise() {
        let code = beep_code();
        let eps = 0.1;
        let decoder = SetDecoder::new(&code, eps);
        let mut rng = StdRng::seed_from_u64(42);
        let inputs: Vec<BitVec> = [9u64, 120, 201]
            .iter()
            .map(|&v| BitVec::from_u64_lsb(v, 8))
            .collect();
        let clean = superimpose(
            inputs
                .iter()
                .map(|r| code.encode(r))
                .collect::<Vec<_>>()
                .iter(),
        )
        .unwrap();
        let mut successes = 0;
        for _ in 0..50 {
            let noisy = clean.flipped_with_noise(eps, &mut rng);
            if inputs.iter().all(|r| decoder.accepts(r, &noisy)) {
                successes += 1;
            }
        }
        assert!(
            successes >= 45,
            "only {successes}/50 noisy decodes succeeded"
        );
    }

    #[test]
    fn set_decoder_rejects_wrong_received_length() {
        let code = beep_code();
        let decoder = SetDecoder::new(&code, 0.0);
        let short = BitVec::zeros(code.params().length() - 1);
        assert!(matches!(
            decoder.decode_candidates(&short, std::iter::empty()),
            Err(CodeError::ReceivedLength { .. })
        ));
    }

    #[test]
    fn exhaustive_caps_input_bits() {
        let params = BeepCodeParams::new(30, 1, 1).unwrap();
        let code = BeepCode::new(params);
        let decoder = SetDecoder::new(&code, 0.0);
        let received = BitVec::zeros(params.length());
        assert!(matches!(
            decoder.decode_exhaustive(&received),
            Err(CodeError::InvalidParams { .. })
        ));
    }

    #[test]
    fn message_decoder_roundtrip_noiseless() {
        let code = dist_code();
        let decoder = MessageDecoder::new(&code);
        let m = BitVec::from_u64_lsb(0xAB, 8);
        let received = code.encode(&m);
        let decoded = decoder.decode_exhaustive(&received).unwrap();
        assert_eq!(decoded.message, m);
        assert_eq!(decoded.distance, 0);
        assert!(decoded.margin.unwrap() > 0);
    }

    #[test]
    fn message_decoder_roundtrip_under_noise() {
        let code = dist_code();
        let decoder = MessageDecoder::new(&code);
        let mut rng = StdRng::seed_from_u64(7);
        let m = BitVec::from_u64_lsb(0x5C, 8);
        let clean = code.encode(&m);
        let mut correct = 0;
        for _ in 0..50 {
            let noisy = clean.flipped_with_noise(0.15, &mut rng);
            if decoder.decode_exhaustive(&noisy).unwrap().message == m {
                correct += 1;
            }
        }
        assert!(correct >= 48, "only {correct}/50 noisy decodes correct");
    }

    #[test]
    fn message_decoder_candidates_tie_break_is_first() {
        let code = dist_code();
        let decoder = MessageDecoder::new(&code);
        let m = BitVec::from_u64_lsb(0x11, 8);
        let received = code.encode(&m);
        // Duplicate candidate list: first instance wins; margin becomes 0.
        let candidates = vec![m.clone(), m.clone()];
        let decoded = decoder.decode_candidates(&received, &candidates).unwrap();
        assert_eq!(decoded.message, m);
        assert_eq!(decoded.margin, Some(0));
    }

    #[test]
    fn message_decoder_empty_candidates_error() {
        let code = dist_code();
        let decoder = MessageDecoder::new(&code);
        let received = BitVec::zeros(code.params().length());
        assert_eq!(
            decoder.decode_candidates(&received, std::iter::empty()),
            Err(CodeError::NoCandidates)
        );
    }

    #[test]
    fn message_decoder_margin_reflects_second_best() {
        let code = dist_code();
        let decoder = MessageDecoder::new(&code);
        let m0 = BitVec::from_u64_lsb(0, 8);
        let m1 = BitVec::from_u64_lsb(1, 8);
        let received = code.encode(&m0);
        let d1 = code.encode(&m1).hamming_distance(&received);
        let decoded = decoder.decode_candidates(&received, [&m0, &m1]).unwrap();
        assert_eq!(decoded.message, m0);
        assert_eq!(decoded.margin, Some(d1));
    }
}
