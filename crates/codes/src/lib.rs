#![warn(missing_docs)]

//! The binary codes of "Optimal Message-Passing with Noisy Beeps"
//! (Davies, PODC 2023), Section 2.
//!
//! Three constructions from the paper, plus the classical baseline it
//! improves on:
//!
//! * [`BeepCode`] — the paper's novel `(a, k, δ)`-beep code (Definition 3,
//!   Theorem 4): a constant-weight code of length `b = c²·k·a` in which the
//!   superimposition (bitwise OR) of `k` *randomly chosen* codewords is, with
//!   probability `≥ 1 − 2⁻²ᵃ`, far (in intersection count) from every other
//!   codeword. This relaxation of classical superimposed codes is what cuts
//!   the length from `Θ(k²a)` to `Θ(ka)` and hence the simulation overhead
//!   from `Θ(Δ² log n)` to `Θ(Δ log n)`.
//! * [`DistanceCode`] — an `(a, δ)`-distance code (Definition 5, Lemma 6):
//!   a random binary code with pairwise Hamming distance `≥ δb` at length
//!   `b = c_δ·a`.
//! * [`CombinedCode`] — the combined code `CD(r, m)` (Notation 7, Figure 1):
//!   the distance codeword `D(m)` written into the 1-positions of the beep
//!   codeword `C(r)`.
//! * [`KautzSingleton`] — the classical Reed–Solomon-based `(a, k)`-
//!   superimposed code (Kautz & Singleton 1964), the paper's Section 1.4
//!   baseline, with length `Θ(q²)` for a field size `q = Θ(k·a/log a)`.
//!
//! # Determinism and the shared-code assumption
//!
//! The paper fixes one public code `C` (it exists by the probabilistic
//! method) that every node knows. We realize this by making each code a
//! *deterministic function* of `(parameters, seed)`: codewords are derived
//! lazily from the input string through a splittable PRF, so two nodes
//! constructing a code with the same seed agree on every codeword without
//! ever materializing the (exponentially large) codebook.
//!
//! # Example
//!
//! ```
//! use beep_bits::BitVec;
//! use beep_codes::{BeepCode, BeepCodeParams};
//!
//! let params = BeepCodeParams::new(8, 4, 3).unwrap(); // a=8, k=4, c=3
//! let code = BeepCode::with_seed(params, 42);
//! let r = BitVec::from_u64_lsb(0b1011_0010, 8);
//! let cw = code.encode(&r);
//! assert_eq!(cw.len(), params.length());        // b = c²ka = 288
//! assert_eq!(cw.count_ones(), params.weight()); // δb/k = ca = 24
//! ```

mod beep_code;
mod combined;
mod decode;
mod distance_code;
mod error;
mod gf;
mod prf;
mod superimposed;
pub mod verify;

pub use beep_code::{BeepCode, BeepCodeParams};
pub use combined::CombinedCode;
pub use decode::{DecodedMessage, MessageDecoder, SetDecoder};
pub use distance_code::{DistanceCode, DistanceCodeParams};
pub use error::CodeError;
pub use gf::PrimeField;
pub use superimposed::{KautzSingleton, KautzSingletonParams};
