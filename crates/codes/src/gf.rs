//! Minimal prime-field arithmetic for the Kautz–Singleton construction.
//!
//! The classical superimposed-code baseline concatenates a Reed–Solomon
//! outer code over `GF(q)` with a unary inner code. Field sizes stay small
//! (`q` is a prime a little above `k·(d−1)`), so trial-division primality
//! and `O(q)`-time helpers are appropriate.

/// A prime field `GF(p)` with `p < 2³²` (all arithmetic stays in `u64`
/// without overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeField {
    p: u64,
}

impl PrimeField {
    /// Constructs `GF(p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a prime below `2³²`.
    #[must_use]
    pub fn new(p: u64) -> Self {
        assert!(p < (1 << 32), "field modulus {p} too large");
        assert!(is_prime(p), "{p} is not prime");
        PrimeField { p }
    }

    /// The field modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Addition in the field.
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// Subtraction in the field.
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// Multiplication in the field.
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        a * b % self.p
    }

    /// Exponentiation by squaring.
    #[must_use]
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        let mut acc = 1 % self.p;
        base %= self.p;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[must_use]
    pub fn inv(&self, a: u64) -> u64 {
        assert!(!a.is_multiple_of(self.p), "zero has no inverse");
        self.pow(a, self.p - 2)
    }

    /// Evaluates the polynomial `coeffs[0] + coeffs[1]·x + …` at `x`
    /// (Horner's rule). Coefficients must already be reduced mod `p`.
    #[must_use]
    pub fn eval_poly(&self, coeffs: &[u64], x: u64) -> u64 {
        let mut acc = 0;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }
}

/// Trial-division primality (fields here are tiny; `O(√p)` is fine).
#[must_use]
pub(crate) fn is_prime(p: u64) -> bool {
    if p < 2 {
        return false;
    }
    if p.is_multiple_of(2) {
        return p == 2;
    }
    let mut d = 3;
    while d * d <= p {
        if p.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime `≥ p`.
///
/// # Panics
///
/// Panics if no prime below `2³²` qualifies (cannot happen for realistic
/// inputs by Bertrand's postulate).
#[must_use]
pub(crate) fn next_prime(mut p: u64) -> u64 {
    if p <= 2 {
        return 2;
    }
    if p.is_multiple_of(2) {
        p += 1;
    }
    while !is_prime(p) {
        p += 2;
        assert!(p < (1 << 32), "prime search escaped supported range");
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small_cases() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 65537];
        let composites = [0u64, 1, 4, 9, 15, 91, 100, 65536];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(65536), 65537);
    }

    #[test]
    fn field_axioms_mod_97() {
        let f = PrimeField::new(97);
        for a in 0..97 {
            assert_eq!(f.add(a, f.sub(0, a)), 0, "additive inverse of {a}");
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a)), 1, "multiplicative inverse of {a}");
            }
        }
        assert_eq!(f.add(96, 1), 0);
        assert_eq!(f.mul(96, 96), 1); // (-1)² = 1
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = PrimeField::new(101);
        let mut acc = 1;
        for e in 0..20 {
            assert_eq!(f.pow(7, e), acc);
            acc = f.mul(acc, 7);
        }
    }

    #[test]
    fn poly_eval_horner() {
        let f = PrimeField::new(13);
        // 3 + 2x + x² at x = 5 → 3 + 10 + 25 = 38 ≡ 12 (mod 13)
        assert_eq!(f.eval_poly(&[3, 2, 1], 5), 12);
        // Empty polynomial is 0; constant polynomial is itself.
        assert_eq!(f.eval_poly(&[], 5), 0);
        assert_eq!(f.eval_poly(&[7], 5), 7);
    }

    #[test]
    fn distinct_polys_agree_rarely() {
        // Two distinct degree-<d polynomials agree on at most d−1 points —
        // the fact the KS construction rests on.
        let f = PrimeField::new(31);
        let p1 = [1u64, 2, 3]; // degree < 3
        let p2 = [5u64, 0, 3];
        let agreements = (0..31)
            .filter(|&x| f.eval_poly(&p1, x) == f.eval_poly(&p2, x))
            .count();
        assert!(agreements <= 2, "{agreements} agreements exceed d-1 = 2");
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn composite_modulus_panics() {
        let _ = PrimeField::new(100);
    }
}
