//! The paper's novel beep codes (Definition 3, Theorem 4).

use crate::error::CodeError;
use crate::prf;
use beep_bits::BitVec;

/// Parameters of an `(a, k, 1/c)`-beep code in the paper's Theorem 4
/// instantiation: length `b = c²·k·a`, codeword weight `δb/k = c·a`.
///
/// * `a` = [`input_bits`](Self::input_bits): the number of input bits each
///   codeword encodes (the paper uses `a = c_ε·γ·log n`).
/// * `k` = [`max_overlap`](Self::max_overlap): the largest number of
///   codewords whose superimposition must remain decodable (the paper uses
///   `k = Δ + 1`, a node's inclusive neighborhood size).
/// * `c` = [`expansion`](Self::expansion): the paper's constant `c_ε`,
///   trading length for decoding slack. Theorem 4 is non-trivial only for
///   `c ≥ 3`, and the noiseless decoding argument needs `c ≥ 7` (so that
///   out-of-set codewords keep `(c−5)a > c·a/4` ones outside the heard
///   superimposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeepCodeParams {
    input_bits: usize,
    max_overlap: usize,
    expansion: usize,
}

impl BeepCodeParams {
    /// Creates beep-code parameters `(a, k, c)` after validating them.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if any parameter is zero, or if
    /// the implied code length `c²·k·a` would overflow `usize`.
    pub fn new(input_bits: usize, max_overlap: usize, expansion: usize) -> Result<Self, CodeError> {
        if input_bits == 0 {
            return Err(CodeError::InvalidParams {
                what: "input_bits",
                detail: "must be at least 1".into(),
            });
        }
        if max_overlap == 0 {
            return Err(CodeError::InvalidParams {
                what: "max_overlap",
                detail: "must be at least 1".into(),
            });
        }
        if expansion == 0 {
            return Err(CodeError::InvalidParams {
                what: "expansion",
                detail: "must be at least 1".into(),
            });
        }
        expansion
            .checked_mul(expansion)
            .and_then(|c2| c2.checked_mul(max_overlap))
            .and_then(|c2k| c2k.checked_mul(input_bits))
            .ok_or_else(|| CodeError::InvalidParams {
                what: "length",
                detail: format!(
                    "c²·k·a overflows usize (c={expansion}, k={max_overlap}, a={input_bits})"
                ),
            })?;
        Ok(BeepCodeParams {
            input_bits,
            max_overlap,
            expansion,
        })
    }

    /// `a`: input length in bits.
    #[must_use]
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// `k`: the superimposition size the code is designed for.
    #[must_use]
    pub fn max_overlap(&self) -> usize {
        self.max_overlap
    }

    /// `c`: the expansion constant (the paper's `c_ε`).
    #[must_use]
    pub fn expansion(&self) -> usize {
        self.expansion
    }

    /// Code length `b = c²·k·a` (Theorem 4). One bit of codeword = one round
    /// of beeping, so this is also the round cost of transmitting a codeword.
    #[must_use]
    pub fn length(&self) -> usize {
        self.expansion * self.expansion * self.max_overlap * self.input_bits
    }

    /// Codeword weight `δb/k = c·a`: every codeword has exactly this many 1s.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.expansion * self.input_bits
    }

    /// The Definition 3 "bad intersection" threshold `5δ²b/k = 5a`:
    /// a superimposition of `k` codewords that intersects another codeword
    /// in at least this many positions counts as a decoding failure.
    #[must_use]
    pub fn bad_intersection_threshold(&self) -> usize {
        5 * self.input_bits
    }

    /// The Lemma 9 decoding threshold `(2ε+1)/4 · weight` for noise rate
    /// `ε`: a candidate codeword is accepted iff fewer than this many of its
    /// 1s fall where the (noisy) heard string has 0s.
    ///
    /// At `ε = 0` this is `weight/4`, strictly between the `0` out-of-`x_v`
    /// ones of a transmitted codeword and the `≥ (c−5)a` of a non-transmitted
    /// one (for `c ≥ 7`).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 0.5)`.
    #[must_use]
    pub fn decode_threshold(&self, epsilon: f64) -> usize {
        assert!(
            (0.0..0.5).contains(&epsilon),
            "noise rate {epsilon} outside [0, 0.5)"
        );
        ((2.0 * epsilon + 1.0) / 4.0 * self.weight() as f64).ceil() as usize
    }
}

/// An `(a, k, 1/c)`-beep code: a deterministic map from `{0,1}^a` to
/// constant-weight codewords in `{0,1}^{c²ka}` (Theorem 4).
///
/// Theorem 4 samples each codeword independently, uniformly at random from
/// all length-`b` strings of weight `c·a`, and shows the result is a beep
/// code with probability `≥ 1 − 2⁻ᵃ`. We implement exactly that sampler,
/// derandomized through a PRF keyed by [`seed`](Self::seed) so that all
/// nodes sharing a seed share the code (see the crate docs).
#[derive(Debug, Clone)]
pub struct BeepCode {
    params: BeepCodeParams,
    seed: u64,
}

/// Domain-separation tag for beep-code codeword derivation.
const BEEP_TAG: u64 = 0xBEE9_C0DE;

impl BeepCode {
    /// Creates the code with a fixed default seed. All parties calling
    /// `BeepCode::new` with equal parameters obtain the same code.
    #[must_use]
    pub fn new(params: BeepCodeParams) -> Self {
        Self::with_seed(params, 0)
    }

    /// Creates the code with an explicit seed (one seed = one concrete code
    /// drawn from the Theorem 4 ensemble).
    #[must_use]
    pub fn with_seed(params: BeepCodeParams, seed: u64) -> Self {
        BeepCode { params, seed }
    }

    /// The code's parameters.
    #[must_use]
    pub fn params(&self) -> BeepCodeParams {
        self.params
    }

    /// The seed identifying this concrete code within the ensemble.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Encodes an `a`-bit input into its codeword `C(r)`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != params.input_bits()`; use
    /// [`try_encode`](Self::try_encode) for a fallible variant.
    #[must_use]
    pub fn encode(&self, input: &BitVec) -> BitVec {
        self.try_encode(input)
            .unwrap_or_else(|e| panic!("BeepCode::encode: {e}"))
    }

    /// Encodes an `a`-bit input into its codeword, or reports a length error.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InputLength`] if the input is not exactly
    /// `a` bits.
    pub fn try_encode(&self, input: &BitVec) -> Result<BitVec, CodeError> {
        if input.len() != self.params.input_bits {
            return Err(CodeError::InputLength {
                expected: self.params.input_bits,
                actual: input.len(),
            });
        }
        let mut rng = prf::derive_rng(self.seed, BEEP_TAG, input);
        Ok(BitVec::random_with_weight(
            self.params.length(),
            self.params.weight(),
            &mut rng,
        ))
    }

    /// Convenience: encodes the low `a` bits of an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `a` bits.
    #[must_use]
    pub fn encode_u64(&self, value: u64) -> BitVec {
        self.encode(&BitVec::from_u64_lsb(value, self.params.input_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BeepCode {
        BeepCode::with_seed(BeepCodeParams::new(8, 4, 7).unwrap(), 1)
    }

    #[test]
    fn params_formulas_match_theorem_4() {
        let p = BeepCodeParams::new(10, 5, 7).unwrap();
        assert_eq!(p.length(), 7 * 7 * 5 * 10); // c²ka
        assert_eq!(p.weight(), 7 * 10); // ca
        assert_eq!(p.bad_intersection_threshold(), 50); // 5a
    }

    #[test]
    fn zero_params_rejected() {
        assert!(BeepCodeParams::new(0, 1, 1).is_err());
        assert!(BeepCodeParams::new(1, 0, 1).is_err());
        assert!(BeepCodeParams::new(1, 1, 0).is_err());
    }

    #[test]
    fn overflow_rejected() {
        let huge = usize::MAX / 2;
        assert!(matches!(
            BeepCodeParams::new(huge, huge, 2),
            Err(CodeError::InvalidParams { what: "length", .. })
        ));
    }

    #[test]
    fn decode_threshold_interpolates() {
        let p = BeepCodeParams::new(10, 5, 8).unwrap(); // weight 80
        assert_eq!(p.decode_threshold(0.0), 20); // weight/4
        assert_eq!(p.decode_threshold(0.25), 30); // 1.5/4 · 80
        assert!(p.decode_threshold(0.49) < p.weight());
    }

    #[test]
    #[should_panic(expected = "outside [0, 0.5)")]
    fn decode_threshold_rejects_half() {
        let _ = BeepCodeParams::new(10, 5, 8).unwrap().decode_threshold(0.5);
    }

    #[test]
    fn codewords_have_exact_weight_and_length() {
        let code = small();
        for v in 0..50u64 {
            let cw = code.encode_u64(v);
            assert_eq!(cw.len(), code.params().length());
            assert_eq!(cw.count_ones(), code.params().weight());
        }
    }

    #[test]
    fn encoding_is_deterministic_and_seed_dependent() {
        let p = BeepCodeParams::new(8, 4, 7).unwrap();
        let a = BeepCode::with_seed(p, 1);
        let b = BeepCode::with_seed(p, 1);
        let c = BeepCode::with_seed(p, 2);
        let r = BitVec::from_u64_lsb(0x5A, 8);
        assert_eq!(a.encode(&r), b.encode(&r));
        assert_ne!(a.encode(&r), c.encode(&r));
    }

    #[test]
    fn distinct_inputs_get_distinct_codewords() {
        // Not guaranteed in general, but overwhelmingly likely at these
        // parameters; a collision would indicate a broken PRF.
        let code = small();
        let mut seen = std::collections::HashSet::new();
        for v in 0..256u64 {
            assert!(
                seen.insert(code.encode_u64(v).to_string()),
                "collision at {v}"
            );
        }
    }

    #[test]
    fn try_encode_rejects_wrong_length() {
        let code = small();
        let bad = BitVec::zeros(9);
        assert_eq!(
            code.try_encode(&bad),
            Err(CodeError::InputLength {
                expected: 8,
                actual: 9
            })
        );
    }

    #[test]
    #[should_panic(expected = "BeepCode::encode")]
    fn encode_panics_on_wrong_length() {
        let _ = small().encode(&BitVec::zeros(9));
    }
}
