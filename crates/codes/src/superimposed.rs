//! The classical Kautz–Singleton `(a, k)`-superimposed code (Definition 1;
//! Kautz & Singleton 1964) — the baseline the paper's beep codes beat.
//!
//! A classical superimposed code guarantees that the OR of **any** `≤ k`
//! codewords uniquely determines the set. The price is length
//! `b = q² = Θ((k·a/log a)²)` here (the best known constructions achieve
//! `O(k²a)`; the D'yachkov–Rykov lower bound says `Ω(k²a/log k)` is
//! unavoidable). The paper's relaxation to *random* codeword sets is what
//! escapes the `k² = Δ²` factor — experiment E1 makes the comparison
//! concrete.
//!
//! Construction: interpret the `a`-bit message as the coefficient vector of
//! a polynomial of degree `< d` over `GF(q)`, evaluate it at all `q` field
//! points (an extended Reed–Solomon codeword), and replace each symbol
//! `s ∈ GF(q)` with the unary indicator string `e_s ∈ {0,1}^q`. Distinct
//! polynomials agree on `≤ d−1` points, so the OR of `k` codewords can cover
//! a different codeword on at most `k(d−1) < q` of its `q` blocks.

use crate::error::CodeError;
use crate::gf::{next_prime, PrimeField};
use beep_bits::BitVec;

/// Derived parameters of a Kautz–Singleton code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KautzSingletonParams {
    message_bits: usize,
    max_overlap: usize,
    /// Field size (prime).
    q: u64,
    /// Number of message symbols (polynomial coefficients), degree < d.
    d: usize,
    /// Bits carried per field symbol (`⌊log₂ q⌋`).
    bits_per_symbol: usize,
}

impl KautzSingletonParams {
    /// Derives the smallest field satisfying the `k`-cover-free condition
    /// `q > k·(d−1)` for `a`-bit messages (iterating because `d` shrinks as
    /// `q` grows).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `message_bits` or
    /// `max_overlap` is zero.
    pub fn new(message_bits: usize, max_overlap: usize) -> Result<Self, CodeError> {
        if message_bits == 0 {
            return Err(CodeError::InvalidParams {
                what: "message_bits",
                detail: "must be at least 1".into(),
            });
        }
        if max_overlap == 0 {
            return Err(CodeError::InvalidParams {
                what: "max_overlap",
                detail: "must be at least 1".into(),
            });
        }
        let k = max_overlap as u64;
        let mut q = next_prime(3.max(k + 1));
        loop {
            let bits_per_symbol = (63 - q.leading_zeros() as usize).max(1);
            let d = message_bits.div_ceil(bits_per_symbol);
            if q > k * (d as u64 - 1) {
                return Ok(KautzSingletonParams {
                    message_bits,
                    max_overlap,
                    q,
                    d,
                    bits_per_symbol,
                });
            }
            q = next_prime(q + 1);
        }
    }

    /// `a`: message bits per codeword.
    #[must_use]
    pub fn message_bits(&self) -> usize {
        self.message_bits
    }

    /// `k`: the cover-free order.
    #[must_use]
    pub fn max_overlap(&self) -> usize {
        self.max_overlap
    }

    /// The Reed–Solomon field size `q`.
    #[must_use]
    pub fn field_size(&self) -> u64 {
        self.q
    }

    /// The number of polynomial coefficients `d` (degree `< d`).
    #[must_use]
    pub fn poly_len(&self) -> usize {
        self.d
    }

    /// Binary code length `b = q²` (q blocks of q bits).
    #[must_use]
    pub fn length(&self) -> usize {
        (self.q * self.q) as usize
    }

    /// Codeword weight: exactly `q` (one 1 per block).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.q as usize
    }
}

/// The Kautz–Singleton code itself. Unlike the randomized paper codes, this
/// construction is fully explicit — no seed.
#[derive(Debug, Clone)]
pub struct KautzSingleton {
    params: KautzSingletonParams,
    field: PrimeField,
}

impl KautzSingleton {
    /// Builds the code for `a`-bit messages with cover-free order `k`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from [`KautzSingletonParams::new`].
    pub fn new(message_bits: usize, max_overlap: usize) -> Result<Self, CodeError> {
        let params = KautzSingletonParams::new(message_bits, max_overlap)?;
        Ok(KautzSingleton {
            params,
            field: PrimeField::new(params.q),
        })
    }

    /// The derived parameters.
    #[must_use]
    pub fn params(&self) -> KautzSingletonParams {
        self.params
    }

    /// Encodes an `a`-bit message.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != params.message_bits()`.
    #[must_use]
    pub fn encode(&self, message: &BitVec) -> BitVec {
        self.try_encode(message)
            .unwrap_or_else(|e| panic!("KautzSingleton::encode: {e}"))
    }

    /// Encodes an `a`-bit message, or reports a length error.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InputLength`] on a mismatch.
    pub fn try_encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        if message.len() != self.params.message_bits {
            return Err(CodeError::InputLength {
                expected: self.params.message_bits,
                actual: message.len(),
            });
        }
        // Chunk the message into d coefficients of bits_per_symbol bits each
        // (every coefficient is < 2^bits_per_symbol ≤ q, so already reduced).
        let mut coeffs = vec![0u64; self.params.d];
        for bit_idx in message.iter_ones() {
            coeffs[bit_idx / self.params.bits_per_symbol] |=
                1 << (bit_idx % self.params.bits_per_symbol);
        }
        let q = self.params.q;
        let mut out = BitVec::zeros(self.params.length());
        for x in 0..q {
            let symbol = self.field.eval_poly(&coeffs, x);
            out.set((x * q + symbol) as usize, true);
        }
        Ok(out)
    }

    /// Convenience: encodes the low `a` bits of an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    #[must_use]
    pub fn encode_u64(&self, value: u64) -> BitVec {
        self.encode(&BitVec::from_u64_lsb(value, self.params.message_bits))
    }

    /// Classical cover-free decoding: a candidate is declared present iff
    /// its codeword is a subset of the received superimposition. Exact for
    /// noiseless superimpositions of `≤ k` codewords.
    #[must_use]
    pub fn covered(&self, candidate: &BitVec, received: &BitVec) -> bool {
        self.encode(candidate).is_subset_of(received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beep_bits::superimpose;

    #[test]
    fn params_satisfy_cover_free_condition() {
        for (a, k) in [(8, 2), (16, 4), (32, 8), (20, 16)] {
            let p = KautzSingletonParams::new(a, k).unwrap();
            assert!(
                p.field_size() > (k as u64) * (p.poly_len() as u64 - 1),
                "a={a} k={k}: q={} d={}",
                p.field_size(),
                p.poly_len()
            );
            assert_eq!(p.length(), (p.field_size() * p.field_size()) as usize);
        }
    }

    #[test]
    fn codewords_have_weight_q() {
        let code = KautzSingleton::new(16, 4).unwrap();
        for v in 0..64u64 {
            let cw = code.encode_u64(v);
            assert_eq!(cw.count_ones(), code.params().weight());
        }
    }

    #[test]
    fn one_one_per_block() {
        let code = KautzSingleton::new(12, 3).unwrap();
        let q = code.params().field_size() as usize;
        let cw = code.encode_u64(0xABC & ((1 << 12) - 1));
        for block in 0..q {
            let ones = (0..q).filter(|&i| cw.get(block * q + i)).count();
            assert_eq!(ones, 1, "block {block}");
        }
    }

    #[test]
    fn distinct_messages_distinct_codewords() {
        let code = KautzSingleton::new(10, 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in 0..1024u64 {
            assert!(
                seen.insert(code.encode_u64(v).to_string()),
                "collision at {v}"
            );
        }
    }

    #[test]
    fn cover_free_property_holds_exhaustively_small() {
        // For a tiny code, verify Definition 1 directly on random subsets.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let code = KautzSingleton::new(8, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let mut set = std::collections::HashSet::new();
            while set.len() < 3 {
                set.insert(rng.random_range(0..256u64));
            }
            let words: Vec<BitVec> = set.iter().map(|&v| code.encode_u64(v)).collect();
            let sup = superimpose(&words).unwrap();
            // Every member is covered…
            for &v in &set {
                assert!(code.covered(&BitVec::from_u64_lsb(v, 8), &sup));
            }
            // …and no non-member is.
            for v in 0..256u64 {
                if !set.contains(&v) {
                    assert!(
                        !code.covered(&BitVec::from_u64_lsb(v, 8), &sup),
                        "non-member {v} covered by {set:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ks_length_is_quadratic_in_k_while_beep_code_is_linear() {
        // The Section 1.4 comparison: growing k at fixed a, the classical
        // code's length grows ~k² while the beep code's grows ~k.
        let a = 16;
        let ks_small = KautzSingleton::new(a, 4).unwrap().params().length();
        let ks_big = KautzSingleton::new(a, 16).unwrap().params().length();
        let ratio_ks = ks_big as f64 / ks_small as f64;
        let bc_small = crate::BeepCodeParams::new(a, 4, 7).unwrap().length();
        let bc_big = crate::BeepCodeParams::new(a, 16, 7).unwrap().length();
        let ratio_bc = bc_big as f64 / bc_small as f64;
        assert!(ratio_ks > 8.0, "KS ratio {ratio_ks} should be ≈ 16");
        assert!(
            (ratio_bc - 4.0).abs() < 0.01,
            "beep ratio {ratio_bc} should be exactly 4"
        );
    }

    #[test]
    fn wrong_length_rejected() {
        let code = KautzSingleton::new(8, 2).unwrap();
        assert!(code.try_encode(&BitVec::zeros(9)).is_err());
    }
}
