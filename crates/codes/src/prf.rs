//! Deterministic codeword derivation.
//!
//! The paper fixes one public code known to all nodes. Rather than
//! materializing `2^a` codewords, we derive the codeword for input `r` on
//! demand by seeding a PRNG from `(code seed, r)` with a SplitMix64-based
//! mixer. Two nodes holding the same code seed therefore agree on every
//! codeword — the shared-code assumption made computable.

use beep_bits::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 output function (Steele, Lea, Flood 2014).
/// Used as a mixing primitive; statistical quality is more than sufficient
/// for deriving simulation randomness (this is not a cryptographic PRF and
/// the simulator does not model adversarial nodes).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic RNG from a code seed, a domain-separation tag,
/// and an input bit string.
pub(crate) fn derive_rng(seed: u64, tag: u64, input: &BitVec) -> StdRng {
    let mut state = seed ^ tag.rotate_left(17);
    let mut acc = splitmix64(&mut state);
    // Absorb the input length and every word of the payload.
    state ^= input.len() as u64;
    acc ^= splitmix64(&mut state);
    for i in 0.. {
        // Walk 64-bit chunks of the input via the public API.
        let lo = i * 64;
        if lo >= input.len() {
            break;
        }
        let mut word = 0u64;
        for b in lo..((lo + 64).min(input.len())) {
            if input.get(b) {
                word |= 1 << (b - lo);
            }
        }
        state ^= word;
        acc ^= splitmix64(&mut state).rotate_left((i % 63) as u32);
    }
    // Expand the accumulated state into a full 32-byte StdRng seed.
    let mut seed_bytes = [0u8; 32];
    let mut s = acc;
    for chunk in seed_bytes.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
    }
    StdRng::from_seed(seed_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn draw(seed: u64, tag: u64, input: &BitVec) -> u64 {
        derive_rng(seed, tag, input).random()
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let input = BitVec::from_u64_lsb(0xABCD, 16);
        assert_eq!(draw(1, 2, &input), draw(1, 2, &input));
    }

    #[test]
    fn sensitive_to_seed_tag_and_input() {
        let a = BitVec::from_u64_lsb(0xABCD, 16);
        let b = BitVec::from_u64_lsb(0xABCE, 16);
        assert_ne!(draw(1, 2, &a), draw(2, 2, &a), "seed must matter");
        assert_ne!(draw(1, 2, &a), draw(1, 3, &a), "tag must matter");
        assert_ne!(draw(1, 2, &a), draw(1, 2, &b), "input must matter");
    }

    #[test]
    fn sensitive_to_input_length() {
        let short = BitVec::zeros(16);
        let long = BitVec::zeros(17);
        assert_ne!(draw(1, 1, &short), draw(1, 1, &long));
    }

    #[test]
    fn distinguishes_high_word_bits() {
        let a = BitVec::from_indices(130, [129]);
        let b = BitVec::from_indices(130, [128]);
        assert_ne!(draw(7, 7, &a), draw(7, 7, &b));
    }
}
