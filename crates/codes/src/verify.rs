//! Statistical verification of code properties — the machinery behind
//! experiments E1 and E2 and the code-level tests.
//!
//! Theorem 4 and Lemma 6 are probabilistic-method existence proofs; these
//! functions measure the corresponding empirical event frequencies on the
//! concrete PRF-derived codes, which is how the reproduction checks the
//! paper's Section 2 claims.

use crate::{BeepCode, DistanceCode, KautzSingleton};
use beep_bits::{superimpose, BitVec};
use rand::{Rng, RngExt};

/// Outcome of a beep-code superimposition trial ensemble (Definition 3's
/// second property, measured on random size-`k` subsets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeepCodeCheck {
    /// Number of trials run.
    pub trials: usize,
    /// Trials in which the superimposition of `k` random codewords
    /// `5δ²b/k`-intersected the codeword of a fresh non-member input.
    pub bad_intersections: usize,
    /// Largest intersection observed between a superimposition and a
    /// non-member codeword (compare to the threshold `5a`).
    pub max_intersection: usize,
    /// The Definition 3 threshold used (`5a`).
    pub threshold: usize,
}

impl BeepCodeCheck {
    /// Empirical probability of the bad event.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.bad_intersections as f64 / self.trials as f64
    }
}

/// Samples `trials` independent experiments: draw `k` distinct random
/// inputs plus one distinct extra input, superimpose the `k` codewords, and
/// test whether the extra codeword `5a`-intersects the superimposition.
///
/// This is exactly the bad event of Definition 3 restricted to random
/// subsets — which is the only regime Algorithm 1 relies on, since nodes
/// pick their inputs `r_v` uniformly at random.
///
/// # Panics
///
/// Panics if `trials == 0` or the input space is too small to draw `k+1`
/// distinct inputs.
#[must_use]
pub fn check_beep_code<R: Rng + ?Sized>(
    code: &BeepCode,
    trials: usize,
    rng: &mut R,
) -> BeepCodeCheck {
    assert!(trials > 0, "need at least one trial");
    let params = code.params();
    let a = params.input_bits();
    let k = params.max_overlap();
    assert!(
        a >= 64 || (k as u64) < (1u64 << a),
        "input space 2^{a} too small for k = {k} distinct draws"
    );
    let threshold = params.bad_intersection_threshold();
    let mut bad = 0;
    let mut max_intersection = 0;
    for _ in 0..trials {
        let inputs = distinct_random_inputs(a, k + 1, rng);
        let codewords: Vec<BitVec> = inputs[..k].iter().map(|r| code.encode(r)).collect();
        let sup = superimpose(&codewords).expect("k >= 1");
        let outsider = code.encode(&inputs[k]);
        let inter = outsider.intersection_count(&sup);
        max_intersection = max_intersection.max(inter);
        if inter >= threshold {
            bad += 1;
        }
    }
    BeepCodeCheck {
        trials,
        bad_intersections: bad,
        max_intersection,
        threshold,
    }
}

/// Outcome of a distance-code pairwise-distance trial ensemble (Lemma 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceCodeCheck {
    /// Number of pairs sampled.
    pub pairs: usize,
    /// Minimum pairwise Hamming distance observed.
    pub min_distance: usize,
    /// Mean pairwise Hamming distance observed.
    pub mean_distance: f64,
    /// Pairs that fell below the `δ·b` target.
    pub violations: usize,
    /// The distance target `δ·b` used.
    pub target: usize,
}

/// Samples `pairs` random distinct message pairs and measures the Hamming
/// distance of their codewords against the Definition 5 target `δ·b`.
///
/// # Panics
///
/// Panics if `pairs == 0` or `delta` is outside `(0, 1/2)`.
#[must_use]
pub fn check_distance_code<R: Rng + ?Sized>(
    code: &DistanceCode,
    delta: f64,
    pairs: usize,
    rng: &mut R,
) -> DistanceCodeCheck {
    assert!(pairs > 0, "need at least one pair");
    let params = code.params();
    let target = params.distance_target(delta);
    let a = params.message_bits();
    let mut min_distance = usize::MAX;
    let mut total = 0usize;
    let mut violations = 0;
    for _ in 0..pairs {
        let ms = distinct_random_inputs(a, 2, rng);
        let d = code.encode(&ms[0]).hamming_distance(&code.encode(&ms[1]));
        min_distance = min_distance.min(d);
        total += d;
        if d < target {
            violations += 1;
        }
    }
    DistanceCodeCheck {
        pairs,
        min_distance,
        mean_distance: total as f64 / pairs as f64,
        violations,
        target,
    }
}

/// Counts cover-free violations of a Kautz–Singleton code on random size-`k`
/// subsets: trials in which the OR of `k` codewords covers the codeword of a
/// non-member. By Definition 1 this must be **zero** for `k` up to the
/// design order; experiment E1 uses it to confirm the classical baseline is
/// correct before comparing lengths.
///
/// # Panics
///
/// Panics if `trials == 0` or the input space cannot supply `k+1` distinct
/// inputs.
#[must_use]
pub fn check_kautz_singleton<R: Rng + ?Sized>(
    code: &KautzSingleton,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> usize {
    assert!(trials > 0, "need at least one trial");
    let a = code.params().message_bits();
    let mut violations = 0;
    for _ in 0..trials {
        let inputs = distinct_random_inputs(a, k + 1, rng);
        let words: Vec<BitVec> = inputs[..k].iter().map(|m| code.encode(m)).collect();
        let sup = superimpose(&words).expect("k >= 1");
        if code.covered(&inputs[k], &sup) {
            violations += 1;
        }
    }
    violations
}

/// Draws `count` *distinct* uniformly random `bits`-bit strings.
fn distinct_random_inputs<R: Rng + ?Sized>(bits: usize, count: usize, rng: &mut R) -> Vec<BitVec> {
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < count.saturating_mul(1000) + 1000,
            "input space 2^{bits} too small to draw {count} distinct strings"
        );
        let candidate = if bits <= 63 {
            BitVec::from_u64_lsb(rng.random_range(0..(1u64 << bits)), bits)
        } else {
            BitVec::random_uniform(bits, rng)
        };
        if seen.insert(candidate.to_string()) {
            out.push(candidate);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeepCodeParams, DistanceCodeParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beep_code_failure_rate_is_low_at_paper_like_params() {
        // a=10, k=5, c=7: Theorem 4 predicts failure probability ≪ 1.
        let code = BeepCode::with_seed(BeepCodeParams::new(10, 5, 7).unwrap(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let check = check_beep_code(&code, 300, &mut rng);
        assert_eq!(check.trials, 300);
        assert!(
            check.failure_rate() < 0.02,
            "failure rate {} too high (max intersection {} / threshold {})",
            check.failure_rate(),
            check.max_intersection,
            check.threshold
        );
    }

    #[test]
    fn beep_code_definition3_is_trivial_below_c3() {
        // The paper notes Theorem 4 is trivial for c ≤ 2: codewords carry
        // only b/(ck) = c·a ones, fewer than the 5a threshold, so the bad
        // event cannot occur *by definition* — even though such codes are
        // useless for decoding (see decoder false-positive test below).
        let code = BeepCode::with_seed(BeepCodeParams::new(10, 5, 2).unwrap(), 2);
        assert!(code.params().weight() < code.params().bad_intersection_threshold());
        let mut rng = StdRng::seed_from_u64(4);
        let check = check_beep_code(&code, 100, &mut rng);
        assert_eq!(check.bad_intersections, 0);
    }

    #[test]
    fn decoder_false_positives_explode_when_c_too_small() {
        // At c = 1 a superimposition of k codewords covers most of the
        // (short) code, so non-transmitted codewords pass the acceptance
        // threshold — the expansion factor is what buys decodability.
        use crate::SetDecoder;
        let mut rng = StdRng::seed_from_u64(4);
        let false_positive_rate = |c: usize, rng: &mut StdRng| {
            let code = BeepCode::with_seed(BeepCodeParams::new(10, 5, c).unwrap(), 2);
            let decoder = SetDecoder::new(&code, 0.0);
            let mut fp = 0;
            let trials = 200;
            for _ in 0..trials {
                let inputs = distinct_random_inputs(10, 6, rng);
                let words: Vec<BitVec> = inputs[..5].iter().map(|r| code.encode(r)).collect();
                let sup = superimpose(&words).unwrap();
                if decoder.accepts(&inputs[5], &sup) {
                    fp += 1;
                }
            }
            fp as f64 / trials as f64
        };
        let fp_small = false_positive_rate(1, &mut rng);
        let fp_paper = false_positive_rate(7, &mut rng);
        // At these sizes ≈ a third of outsiders pass (Binomial(10, 1/3) ≤ 2)
        // — catastrophic for set decoding, where *every* outsider must fail.
        assert!(
            fp_small > 0.2,
            "c=1 false-positive rate {fp_small} unexpectedly low"
        );
        assert!(
            fp_paper < 0.02,
            "c=7 false-positive rate {fp_paper} unexpectedly high"
        );
    }

    #[test]
    fn distance_code_meets_third_distance_at_lemma6_rate() {
        let code = DistanceCode::with_seed(DistanceCodeParams::new(12, 108).unwrap(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let check = check_distance_code(&code, 1.0 / 3.0, 300, &mut rng);
        assert_eq!(
            check.violations, 0,
            "min distance {} < target {}",
            check.min_distance, check.target
        );
        // Random codewords concentrate near b/2.
        let b = code.params().length() as f64;
        assert!((check.mean_distance - b / 2.0).abs() < b * 0.05);
    }

    #[test]
    fn kautz_singleton_has_zero_violations_at_design_order() {
        let code = KautzSingleton::new(12, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(check_kautz_singleton(&code, 4, 200, &mut rng), 0);
    }

    #[test]
    fn distinct_inputs_are_distinct() {
        let mut rng = StdRng::seed_from_u64(8);
        let inputs = distinct_random_inputs(6, 30, &mut rng);
        let set: std::collections::HashSet<String> = inputs.iter().map(|b| b.to_string()).collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn distinct_inputs_panics_when_space_exhausted() {
        let mut rng = StdRng::seed_from_u64(9);
        // 2^2 = 4 strings cannot supply 5 distinct values.
        distinct_random_inputs(2, 5, &mut rng);
    }
}
