//! Error type for code construction and use.

use std::error::Error;
use std::fmt;

/// Errors arising from invalid code parameters or mismatched inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// A code parameter was outside its valid range.
    InvalidParams {
        /// Which parameter was invalid.
        what: &'static str,
        /// Human-readable description of the constraint that failed.
        detail: String,
    },
    /// An input string had the wrong length for this code.
    InputLength {
        /// Expected input length in bits.
        expected: usize,
        /// Actual input length in bits.
        actual: usize,
    },
    /// A received string had the wrong length for this decoder.
    ReceivedLength {
        /// Expected received length in bits.
        expected: usize,
        /// Actual received length in bits.
        actual: usize,
    },
    /// A carrier/payload pair for the combined code was incompatible.
    CarrierPayloadMismatch {
        /// Number of 1s in the carrier (beep) codeword.
        carrier_weight: usize,
        /// Length of the payload (distance) codeword.
        payload_len: usize,
    },
    /// The decoder was given no candidates to choose between.
    NoCandidates,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { what, detail } => {
                write!(f, "invalid code parameter `{what}`: {detail}")
            }
            CodeError::InputLength { expected, actual } => {
                write!(f, "input length {actual} bits, code expects {expected}")
            }
            CodeError::ReceivedLength { expected, actual } => {
                write!(f, "received string length {actual} bits, decoder expects {expected}")
            }
            CodeError::CarrierPayloadMismatch {
                carrier_weight,
                payload_len,
            } => write!(
                f,
                "combined code requires carrier weight ({carrier_weight}) to equal payload length ({payload_len})"
            ),
            CodeError::NoCandidates => write!(f, "decoder was given no candidate codewords"),
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CodeError::InputLength {
            expected: 8,
            actual: 5,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("8"));
        let e = CodeError::CarrierPayloadMismatch {
            carrier_weight: 24,
            payload_len: 20,
        };
        assert!(e.to_string().contains("24"));
        assert!(e.to_string().contains("20"));
    }
}
