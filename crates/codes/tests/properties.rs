//! Property-based tests for the code constructions: structural invariants
//! that must hold for *every* input, not just sampled ones.

use beep_bits::BitVec;
use beep_codes::{
    BeepCode, BeepCodeParams, CombinedCode, DistanceCode, DistanceCodeParams, KautzSingleton,
    MessageDecoder, SetDecoder,
};
use proptest::prelude::*;

fn input_bits(bits: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), bits).prop_map(|b| BitVec::from_bools(&b))
}

proptest! {
    #[test]
    fn beep_codewords_always_have_design_weight(
        r in input_bits(12),
        seed in any::<u64>(),
        k in 1usize..10,
        c in 3usize..10,
    ) {
        let params = BeepCodeParams::new(12, k, c).unwrap();
        let code = BeepCode::with_seed(params, seed);
        let cw = code.encode(&r);
        prop_assert_eq!(cw.len(), params.length());
        prop_assert_eq!(cw.count_ones(), params.weight());
    }

    #[test]
    fn beep_encoding_is_a_function(r in input_bits(12), seed in any::<u64>()) {
        let params = BeepCodeParams::new(12, 4, 7).unwrap();
        let c1 = BeepCode::with_seed(params, seed);
        let c2 = BeepCode::with_seed(params, seed);
        prop_assert_eq!(c1.encode(&r), c2.encode(&r));
    }

    #[test]
    fn distance_codewords_have_design_length(m in input_bits(10), seed in any::<u64>()) {
        let params = DistanceCodeParams::new(10, 20).unwrap();
        let code = DistanceCode::with_seed(params, seed);
        prop_assert_eq!(code.encode(&m).len(), 200);
    }

    #[test]
    fn combined_code_figure1_structure(r in input_bits(8), m in input_bits(10), seed in any::<u64>()) {
        // beep: a=8, k=3, c=5 → weight 40; distance: len 40.
        let beep = BeepCode::with_seed(BeepCodeParams::new(8, 3, 5).unwrap(), seed);
        let dist = DistanceCode::with_seed(DistanceCodeParams::with_length(10, 40).unwrap(), seed);
        let cc = CombinedCode::new(beep, dist).unwrap();
        let cd = cc.encode(&r, &m);
        let carrier = cc.beep_code().encode(&r);
        let payload = cc.distance_code().encode(&m);
        // CD(r,m) ⊆ C(r), zero outside, payload readable back at 1-positions.
        prop_assert!(cd.is_subset_of(&carrier));
        prop_assert_eq!(cd.count_ones(), payload.count_ones());
        prop_assert_eq!(CombinedCode::project(&cd, &carrier).unwrap(), payload);
    }

    #[test]
    fn noiseless_set_decode_accepts_every_transmitted_word(
        inputs in prop::collection::hash_set(0u64..4096, 1..=5),
        seed in any::<u64>(),
    ) {
        let params = BeepCodeParams::new(12, 5, 7).unwrap();
        let code = BeepCode::with_seed(params, seed);
        let decoder = SetDecoder::new(&code, 0.0);
        let words: Vec<BitVec> = inputs
            .iter()
            .map(|&v| code.encode(&BitVec::from_u64_lsb(v, 12)))
            .collect();
        let sup = beep_bits::superimpose(&words).unwrap();
        // Completeness is unconditional: a transmitted codeword has zero
        // ones outside the superimposition, so it is always accepted.
        for &v in &inputs {
            prop_assert!(decoder.accepts(&BitVec::from_u64_lsb(v, 12), &sup));
        }
    }

    #[test]
    fn message_decoder_identifies_exact_codeword(
        m in 0u64..1024,
        decoys in prop::collection::hash_set(0u64..1024, 1..8),
        seed in any::<u64>(),
    ) {
        let params = DistanceCodeParams::new(10, 20).unwrap();
        let code = DistanceCode::with_seed(params, seed);
        let decoder = MessageDecoder::new(&code);
        let message = BitVec::from_u64_lsb(m, 10);
        let received = code.encode(&message);
        let mut candidates: Vec<BitVec> = decoys
            .into_iter()
            .map(|v| BitVec::from_u64_lsb(v, 10))
            .collect();
        candidates.push(message.clone());
        let decoded = decoder.decode_candidates(&received, &candidates).unwrap();
        // Distance 0 to the true codeword; any other candidate is at
        // positive distance (codewords are distinct w.o.p.), so the true
        // message wins.
        prop_assert_eq!(decoded.message, message);
        prop_assert_eq!(decoded.distance, 0);
    }

    #[test]
    fn kautz_singleton_subset_structure(m in 0u64..4096, k in 1usize..6) {
        let code = KautzSingleton::new(12, k).unwrap();
        let cw = code.encode(&BitVec::from_u64_lsb(m, 12));
        let q = code.params().field_size() as usize;
        prop_assert_eq!(cw.len(), q * q);
        prop_assert_eq!(cw.count_ones(), q);
        // Self-covering always holds.
        prop_assert!(code.covered(&BitVec::from_u64_lsb(m, 12), &cw));
    }
}
