//! Golden pin for the campaign report format, mirroring
//! `beep-net`'s `noise_stream_golden.rs`.
//!
//! A campaign report with timing excluded is a pure function of its spec:
//! topology instances, protocol runs, cell ordering, the JSON field set,
//! and the JSON rendering itself are all part of the reproducibility
//! contract. This test runs a fixed small campaign (fixed seeds) and
//! compares the serialized report byte for byte against the checked-in
//! fixture, so *any* drift — an engine RNG-stream change, a protocol
//! tweak, a schema or formatter edit — fails loudly here instead of
//! silently shifting the recorded perf trajectory.
//!
//! If you change the format or the underlying streams *deliberately*,
//! regenerate the fixture (and bump `SCHEMA_VERSION` for structural
//! changes; document either break in CHANGES.md):
//!
//! ```sh
//! cargo run --release -p beep-bench --bin campaign -- \
//!     --name golden --topologies cycle,torus --sizes 9 \
//!     --epsilons 0.0,0.1 --protocols wave,round_sim --seeds 7 \
//!     --no-timing --quiet \
//!     --out crates/scenarios/tests/fixtures/golden_report.json
//! ```

use beep_apps::Protocol;
use beep_scenarios::{
    run_campaign, validate_report, CampaignSpec, CellStatus, RunOptions, TopologyFamily,
    TopologySpec,
};

const GOLDEN: &str = include_str!("fixtures/golden_report.json");

/// The fixture's spec — must match the regeneration command above.
fn golden_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden".into(),
        topologies: vec![
            TopologySpec {
                family: TopologyFamily::Cycle,
                sizes: vec![9],
            },
            TopologySpec {
                family: TopologyFamily::Torus,
                sizes: vec![9],
            },
        ],
        epsilons: vec![0.0, 0.1],
        channels: vec![],
        faults: vec![],
        protocols: vec![Protocol::Wave, Protocol::RoundSim],
        seeds: vec![7],
    }
}

#[test]
fn golden_campaign_report_is_bit_stable_modulo_timing() {
    let report = run_campaign(&golden_spec(), &RunOptions::default()).unwrap();
    let rendered = report.to_json(false).to_pretty();
    if rendered != GOLDEN {
        // Print the computed report so a deliberate break can be
        // regenerated straight from the failure output.
        println!("computed report:\n{rendered}");
    }
    assert_eq!(
        rendered, GOLDEN,
        "campaign report drifted from the golden fixture (see module docs to regenerate)"
    );
}

#[test]
fn golden_fixture_passes_schema_validation() {
    let json = beep_scenarios::json::Json::parse(GOLDEN).unwrap();
    validate_report(&json).unwrap();
}

#[test]
fn golden_report_is_thread_count_invariant() {
    let spec = golden_spec();
    let serial = run_campaign(
        &spec,
        &RunOptions {
            threads: 1,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let threaded = run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        serial.to_json(false).to_pretty(),
        threaded.to_json(false).to_pretty()
    );
    assert_eq!(serial.to_json(false).to_pretty(), GOLDEN);
}

#[test]
fn golden_campaign_has_the_expected_shape() {
    let report = run_campaign(&golden_spec(), &RunOptions::default()).unwrap();
    // 2 families × 1 size × 2 ε × 2 protocols × 1 seed.
    assert_eq!(report.cells.len(), 8);
    let s = report.summary();
    // The noiseless primitives skip at ε > 0: one wave cell per family.
    assert_eq!(s.skipped, 2);
    assert_eq!(s.ok, 6);
    assert_eq!(s.failed, 0);
    assert!(report
        .cells
        .iter()
        .filter(|c| c.protocol == "wave" && c.epsilon > 0.0)
        .all(|c| c.status == CellStatus::Skipped));
}
