//! End-to-end pin for the checked-in channel-sweep campaign
//! (`scenarios/channels.toml`): the spec must parse, sweep all four
//! channel families (iid, Gilbert–Elliott, per-node, adversarial), run
//! with zero failed cells, emit a schema-valid version-2 report, and
//! stay byte-identical across worker-thread counts.
//!
//! This is the acceptance test for the channel dimension as a whole —
//! the unit tests pin each layer (parsing, expansion, the report
//! schema); this one proves the layers compose over a real spec file.

use beep_scenarios::{run_campaign, validate_report, CampaignSpec, CellStatus, RunOptions};

const SPEC: &str = include_str!("../../../scenarios/channels.toml");

#[test]
fn checked_in_channel_sweep_runs_all_four_families_deterministically() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    // One iid ε plus the three [[channel]] tables.
    assert_eq!(spec.epsilons.len(), 1);
    assert_eq!(spec.channels.len(), 3);
    assert_eq!(spec.channel_axis().len(), 4);

    let report = run_campaign(
        &spec,
        &RunOptions {
            threads: 1,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let summary = report.summary();
    assert_eq!(summary.failed, 0, "{}", report.render_table());
    assert_eq!(summary.skipped, 0, "{}", report.render_table());
    assert_eq!(
        summary.successes,
        summary.ok,
        "every cell of the checked-in sweep must succeed:\n{}",
        report.render_table()
    );

    // Every channel family actually produced running cells.
    for label in [
        "eps0.05",
        "ge-g0.01-b0.2-pgb0.1-pbg0.5",
        "pernode-0-0.05-0.1",
        "adv-f0.05-e0.05",
    ] {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.channel == label && c.status == CellStatus::Ok && c.rounds > 0),
            "no running cell for channel {label}"
        );
    }

    // The report is schema-valid in both forms.
    validate_report(&report.to_json(false)).unwrap();
    validate_report(&report.to_json(true)).unwrap();

    // And a pure function of the spec at every worker count.
    let threaded = run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        report.to_json(false).to_pretty(),
        threaded.to_json(false).to_pretty()
    );
}
