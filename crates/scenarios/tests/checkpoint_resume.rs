//! The checkpoint/resume contract, end to end on the checked-in smoke
//! campaign: interrupt a run (deterministically, via `max_cells`, and
//! destructively, by truncating the journal), resume it, and require the
//! final timing-free report to be **byte-identical** to an uninterrupted
//! run — the property the CI resume smoke re-checks from the CLI.
//!
//! Identity holds because every cell is a pure function of its id (cell
//! seeds derive from ids, instances from group keys) and replayed cells
//! round-trip losslessly through the JSONL journal (shortest-roundtrip
//! float rendering, hex cell seeds).

use beep_scenarios::{
    run_campaign, run_campaign_resumable, CampaignSpec, RunOptions, ScenarioError,
    CHECKPOINT_SCHEMA, SCHEMA_VERSION,
};
use std::path::PathBuf;

const SMOKE: &str = include_str!("../../../scenarios/smoke.toml");

fn smoke_spec() -> CampaignSpec {
    CampaignSpec::parse(SMOKE).expect("checked-in smoke spec parses")
}

/// A faulted + adaptive campaign over the fault-tolerant family: static
/// plans, purely adaptive policies, and a composition, all of which must
/// round-trip through the journal like any other cell.
fn adaptive_spec() -> CampaignSpec {
    CampaignSpec::parse(concat!(
        "name = \"adaptive-resume\"\n",
        "seeds = [1]\n",
        "epsilons = [0.1]\n",
        "protocols = [\"beep_ben_or\", \"beep_reliable_broadcast\"]\n",
        "[[topology]]\nfamily = \"complete\"\nsizes = [8]\n",
        "[[faults]]\nkind = \"crash\"\nfraction = 0.25\nround = 4\n",
        "[[faults]]\npolicy = \"target_loudest\"\nbudget_frac = 0.125\n",
        "[[faults]]\nkind = \"mute\"\nfraction = 0.125\n",
        "policy = \"rushing_spam\"\nbudget_frac = 0.125\nwindow = 2\n",
    ))
    .expect("adaptive spec parses")
}

/// A per-test temp path (the test process cleans up after itself).
fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("beep-resume-{tag}-{}.jsonl", std::process::id()))
}

fn options(threads: usize, max_cells: Option<usize>) -> RunOptions {
    RunOptions { threads, max_cells }
}

/// The uninterrupted baseline every resume path must reproduce.
fn oneshot_bytes(spec: &CampaignSpec) -> String {
    run_campaign(spec, &options(2, None))
        .expect("smoke campaign runs")
        .to_json(false)
        .to_pretty()
}

#[test]
fn max_cells_interrupt_then_resume_is_byte_identical() {
    let spec = smoke_spec();
    let baseline = oneshot_bytes(&spec);
    let journal = temp_journal("maxcells");
    let _ = std::fs::remove_file(&journal);

    // "Interrupt" after 5 of the 12 cells: report not yet assemblable.
    let partial = run_campaign_resumable(&spec, &options(2, Some(5)), &journal)
        .expect("partial run succeeds");
    assert!(partial.report.is_none());
    assert_eq!(partial.total, 12);
    assert_eq!(partial.replayed, 0);
    assert_eq!(partial.executed, 5);
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    assert!(text.starts_with('{'), "JSONL journal");
    assert!(text.contains(CHECKPOINT_SCHEMA), "header names the schema");
    assert_eq!(text.lines().count(), 1 + 5, "header + one line per cell");

    // Resume (different thread count on purpose) and finish.
    let resumed =
        run_campaign_resumable(&spec, &options(3, None), &journal).expect("resumed run succeeds");
    assert_eq!(resumed.replayed, 5);
    assert_eq!(resumed.executed, 7);
    let report = resumed.report.expect("complete after resume");
    assert_eq!(report.to_json(false).to_pretty(), baseline);

    // Resuming a *finished* campaign replays everything and runs nothing.
    let idle =
        run_campaign_resumable(&spec, &options(1, None), &journal).expect("no-op resume succeeds");
    assert_eq!((idle.replayed, idle.executed), (12, 0));
    assert_eq!(
        idle.report
            .expect("still complete")
            .to_json(false)
            .to_pretty(),
        baseline
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn truncated_journal_resumes_to_the_same_bytes() {
    let spec = smoke_spec();
    let baseline = oneshot_bytes(&spec);
    let journal = temp_journal("truncate");
    let _ = std::fs::remove_file(&journal);

    // Run to completion, journalling every cell.
    let full =
        run_campaign_resumable(&spec, &options(2, None), &journal).expect("full run succeeds");
    assert_eq!(full.executed, 12);

    // Simulate a crash: keep the header and the first 4 records —
    // including a torn (half-written) 5th, which a loader must tolerate.
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 13);
    let mut torn = lines[..5].join("\n");
    torn.push('\n');
    torn.push_str(&lines[5][..lines[5].len() / 2]);
    std::fs::write(&journal, torn).expect("truncate journal");

    let resumed =
        run_campaign_resumable(&spec, &options(4, None), &journal).expect("resume succeeds");
    assert_eq!(resumed.replayed, 4, "torn record is discarded");
    assert_eq!(resumed.executed, 8);
    assert_eq!(
        resumed
            .report
            .expect("complete after resume")
            .to_json(false)
            .to_pretty(),
        baseline
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn faulted_adaptive_campaign_interrupt_resume_is_byte_identical() {
    let spec = adaptive_spec();
    let baseline = oneshot_bytes(&spec);
    // The v4 report carries the adaptive fault labels verbatim.
    assert!(baseline.contains(&format!("\"version\": {SCHEMA_VERSION}")));
    assert!(baseline.contains("\"faults\": \"loudest-f0.125\""));
    assert!(baseline.contains("\"faults\": \"mute-f0.125+rushing-f0.125-w2\""));
    let journal = temp_journal("adaptive");
    let _ = std::fs::remove_file(&journal);

    // Interrupt after 3 of the (fault-free + 3 faults) × 2 protocols = 8
    // cells: adaptive cells land in the journal and must replay exactly.
    let partial = run_campaign_resumable(&spec, &options(2, Some(3)), &journal)
        .expect("partial run succeeds");
    assert!(partial.report.is_none());
    assert_eq!(partial.total, 8);
    assert_eq!(partial.executed, 3);

    let resumed =
        run_campaign_resumable(&spec, &options(4, None), &journal).expect("resumed run succeeds");
    assert_eq!(resumed.replayed, 3);
    assert_eq!(resumed.executed, 5);
    let report = resumed.report.expect("complete after resume");
    assert_eq!(report.to_json(false).to_pretty(), baseline);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn checkpoint_from_a_different_spec_is_rejected() {
    let spec = smoke_spec();
    let journal = temp_journal("fingerprint");
    let _ = std::fs::remove_file(&journal);
    run_campaign_resumable(&spec, &options(1, Some(3)), &journal).expect("partial run succeeds");

    // Same file, different campaign (an extra seed changes the matrix):
    // the fingerprint must refuse the journal rather than mix results.
    let mut other = smoke_spec();
    other.seeds.push(2);
    let err = run_campaign_resumable(&other, &options(1, None), &journal)
        .expect_err("mismatched journal is rejected");
    assert!(
        matches!(&err, ScenarioError::Checkpoint { detail } if detail.contains("fingerprint")),
        "{err}"
    );
    let _ = std::fs::remove_file(&journal);
}
