//! Campaign results: per-cell records, the campaign summary, the
//! schema-versioned JSON report, and a human-readable table.
//!
//! # Report schema (`beep-campaign-report`, version 4)
//!
//! ```json
//! {
//!   "schema": "beep-campaign-report",
//!   "version": 4,
//!   "campaign": "<name>",
//!   "cells": [ { …one object per cell, in matrix order… } ],
//!   "summary": { "cells": N, "ok": …, "failed": …, "skipped": …,
//!                 "successes": …, "success_rate": …,
//!                 "total_rounds": …, "total_beeps": … },
//!   "wall_ms": 12.3
//! }
//! ```
//!
//! Version 2 added the per-cell `"channel"` string (the channel-axis
//! label, `eps{ε}` for iid cells) alongside the calibration `"epsilon"`.
//! Version 3 added the per-cell `"faults"` string — the fault-axis label
//! (`crash-f{fraction}-r{round}`, `spam-f{fraction}`, `mute-f{fraction}`)
//! or `"none"` for fault-free cells. Version 4 extended the `"faults"`
//! label vocabulary with adaptive-policy segments (`loudest-f{frac}`,
//! `rushing-f{frac}-w{window}`, and `{static}+{policy}` compositions) —
//! the field shapes are unchanged, but a v3 consumer would misparse the
//! new labels, so the version gates them.
//!
//! Everything except the `wall_ms` fields (one per cell plus the
//! campaign-level one) is a pure function of the spec — re-running the
//! same spec yields a byte-identical report when timing is excluded
//! ([`CampaignReport::to_json`] with `include_timing = false`), which is
//! what the golden-report test pins. Bump [`SCHEMA_VERSION`] on any
//! structural change.

use crate::error::ScenarioError;
use crate::json::Json;

/// Schema identifier carried by every report.
pub const SCHEMA_NAME: &str = "beep-campaign-report";
/// Current schema version. Bump on structural change and record the
/// break in CHANGES.md. Version 2 added the per-cell `channel` label;
/// version 3 added the per-cell `faults` label; version 4 extended the
/// `faults` label vocabulary with adaptive-policy segments.
pub const SCHEMA_VERSION: i64 = 4;

/// How a cell's execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The protocol ran to completion (its verdict is in `success`).
    Ok,
    /// The protocol errored (budget exhausted, validation failed, …).
    Failed,
    /// The cell is structurally inapplicable (noiseless-only protocol at
    /// ε > 0, unrealizable topology size) and was skipped.
    Skipped,
}

impl CellStatus {
    /// The schema string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::Skipped => "skipped",
        }
    }

    /// Parses the schema string back.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<CellStatus> {
        match s {
            "ok" => Some(CellStatus::Ok),
            "failed" => Some(CellStatus::Failed),
            "skipped" => Some(CellStatus::Skipped),
            _ => None,
        }
    }
}

/// The outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Stable cell id (`family/n{size}/{channel}/protocol/s{seed}`).
    pub id: String,
    /// Topology family label (with parameters).
    pub family: String,
    /// Requested node count.
    pub requested_n: usize,
    /// Realized node count (grid/torus round to their shape).
    pub n: usize,
    /// Realized edge count.
    pub edges: usize,
    /// Realized maximum degree Δ.
    pub max_degree: usize,
    /// Resolved generation parameters (auto radius, degree, …).
    pub topology_params: Vec<(String, f64)>,
    /// Calibration noise rate ε (the channel's worst-case iid-equivalent
    /// rate; the iid channel's own ε).
    pub epsilon: f64,
    /// Channel-axis label (`eps{ε}` for iid cells, `ge-…`/`pernode-…`/
    /// `adv-…` for the richer models).
    pub channel: String,
    /// Fault-axis label (`crash-f{fraction}-r{round}`/`spam-f{fraction}`/
    /// `mute-f{fraction}` for static entries, `loudest-f{frac}`/
    /// `rushing-f{frac}-w{window}` for adaptive policies,
    /// `{static}+{policy}` for compositions; `"none"` for fault-free
    /// cells).
    pub faults: String,
    /// Protocol registry name.
    pub protocol: String,
    /// Sweep seed.
    pub seed: u64,
    /// Derived per-cell seed (hex, for reproduction outside a campaign).
    pub cell_seed: u64,
    /// Execution status.
    pub status: CellStatus,
    /// The protocol's own correctness verdict (only meaningful when
    /// `status` is [`CellStatus::Ok`]).
    pub success: bool,
    /// Beep rounds executed.
    pub rounds: usize,
    /// Beeps emitted (energy).
    pub beeps: u64,
    /// Protocol-specific metrics.
    pub metrics: Vec<(String, f64)>,
    /// Error detail for failed/skipped cells (empty otherwise).
    pub detail: String,
    /// Cell wall-clock in milliseconds (excluded from golden output).
    pub wall_ms: f64,
}

impl CellResult {
    /// Serializes the cell as its report-`cells`-array element. The
    /// checkpoint journal writes exactly this shape (with timing) per
    /// completed cell; [`CellResult::from_json`] is the inverse.
    #[must_use]
    pub fn to_json(&self, include_timing: bool) -> Json {
        let mut pairs = vec![
            ("id", Json::Str(self.id.clone())),
            ("family", Json::Str(self.family.clone())),
            ("requested_n", int(self.requested_n)),
            ("n", int(self.n)),
            ("edges", int(self.edges)),
            ("max_degree", int(self.max_degree)),
            (
                "topology_params",
                Json::Obj(
                    self.topology_params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            ("epsilon", Json::Float(self.epsilon)),
            ("channel", Json::Str(self.channel.clone())),
            ("faults", Json::Str(self.faults.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            ("seed", int_u64(self.seed)),
            ("cell_seed", Json::Str(format!("{:#018x}", self.cell_seed))),
            ("status", Json::Str(self.status.as_str().into())),
            ("success", Json::Bool(self.success)),
            ("rounds", int(self.rounds)),
            ("beeps", int_u64(self.beeps)),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            ("detail", Json::Str(self.detail.clone())),
        ];
        if include_timing {
            pairs.push(("wall_ms", Json::Float(self.wall_ms)));
        }
        Json::obj(pairs)
    }

    /// Parses a per-cell JSON object (the element shape of a report's
    /// `cells` array) back into a [`CellResult`] — the replay half of the
    /// checkpoint journal's round-trip contract. Every non-timing field
    /// survives the trip bit for bit (floats render shortest-roundtrip
    /// and parse back exactly); a missing `wall_ms` reads as `0.0`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Report`] naming the first missing or ill-typed
    /// field.
    pub fn from_json(json: &Json) -> Result<CellResult, ScenarioError> {
        let fail = |what: &str| ScenarioError::Report {
            detail: format!("cell record: {what}"),
        };
        let s = |key: &'static str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(ToString::to_string)
                .ok_or_else(|| fail(&format!("missing string {key}")))
        };
        let u = |key: &'static str| {
            json.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| fail(&format!("missing or negative {key}")))
        };
        let pairs = |key: &'static str| -> Result<Vec<(String, f64)>, ScenarioError> {
            match json.get(key) {
                Some(Json::Obj(entries)) => entries
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|v| (k.clone(), v))
                            .ok_or_else(|| fail(&format!("non-numeric {key} entry {k:?}")))
                    })
                    .collect(),
                _ => Err(fail(&format!("missing object {key}"))),
            }
        };
        let seed_hex = s("cell_seed")?;
        let cell_seed = seed_hex
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| fail(&format!("malformed cell_seed {seed_hex:?}")))?;
        Ok(CellResult {
            id: s("id")?,
            family: s("family")?,
            requested_n: u("requested_n")?,
            n: u("n")?,
            edges: u("edges")?,
            max_degree: u("max_degree")?,
            topology_params: pairs("topology_params")?,
            epsilon: json
                .get("epsilon")
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("missing epsilon"))?,
            channel: s("channel")?,
            faults: s("faults")?,
            protocol: s("protocol")?,
            seed: json
                .get("seed")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| fail("missing or negative seed"))?,
            cell_seed,
            status: s("status").and_then(|raw| {
                CellStatus::from_str_opt(&raw).ok_or_else(|| fail(&format!("bad status {raw:?}")))
            })?,
            success: json
                .get("success")
                .and_then(Json::as_bool)
                .ok_or_else(|| fail("missing success"))?,
            rounds: u("rounds")?,
            beeps: json
                .get("beeps")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| fail("missing or negative beeps"))?,
            metrics: pairs("metrics")?,
            detail: s("detail")?,
            wall_ms: json.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

fn int(v: usize) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Saturating, never wrapping: a wrapped negative would make the report
/// fail its own schema validation (`validate_report` requires these
/// fields non-negative). Counts can't realistically reach `i64::MAX`;
/// seeds above it are rejected at spec-parse/CLI time.
fn int_u64(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Campaign-level aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total cells in the matrix.
    pub cells: usize,
    /// Cells that ran to completion.
    pub ok: usize,
    /// Cells whose protocol errored.
    pub failed: usize,
    /// Structurally inapplicable cells.
    pub skipped: usize,
    /// Ok cells whose correctness verdict was positive.
    pub successes: usize,
    /// `successes / ok` (0 when nothing ran).
    pub success_rate: f64,
    /// Sum of beep rounds over ok cells.
    pub total_rounds: u64,
    /// Sum of beeps over ok cells.
    pub total_beeps: u64,
}

/// A completed campaign: cells in matrix order plus the wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub campaign: String,
    /// Per-cell results, in matrix order.
    pub cells: Vec<CellResult>,
    /// End-to-end wall-clock in milliseconds.
    pub wall_ms: f64,
}

impl CampaignReport {
    /// Computes the campaign-level aggregates.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn summary(&self) -> Summary {
        let mut s = Summary {
            cells: self.cells.len(),
            ok: 0,
            failed: 0,
            skipped: 0,
            successes: 0,
            success_rate: 0.0,
            total_rounds: 0,
            total_beeps: 0,
        };
        for cell in &self.cells {
            match cell.status {
                CellStatus::Ok => {
                    s.ok += 1;
                    if cell.success {
                        s.successes += 1;
                    }
                    s.total_rounds += cell.rounds as u64;
                    s.total_beeps += cell.beeps;
                }
                CellStatus::Failed => s.failed += 1,
                CellStatus::Skipped => s.skipped += 1,
            }
        }
        if s.ok > 0 {
            s.success_rate = s.successes as f64 / s.ok as f64;
        }
        s
    }

    /// Serializes the report. With `include_timing = false` the output is
    /// a pure function of the spec (the golden-test form); with `true` it
    /// additionally carries per-cell and campaign `wall_ms`.
    #[must_use]
    pub fn to_json(&self, include_timing: bool) -> Json {
        let s = self.summary();
        let mut pairs = vec![
            ("schema", Json::Str(SCHEMA_NAME.into())),
            ("version", Json::Int(SCHEMA_VERSION)),
            ("campaign", Json::Str(self.campaign.clone())),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| c.to_json(include_timing))
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("cells", int(s.cells)),
                    ("ok", int(s.ok)),
                    ("failed", int(s.failed)),
                    ("skipped", int(s.skipped)),
                    ("successes", int(s.successes)),
                    ("success_rate", Json::Float(s.success_rate)),
                    ("total_rounds", int_u64(s.total_rounds)),
                    ("total_beeps", int_u64(s.total_beeps)),
                ]),
            ),
        ];
        if include_timing {
            pairs.push(("wall_ms", Json::Float(self.wall_ms)));
        }
        Json::obj(pairs)
    }

    /// Renders the human-readable cell table plus a summary footer.
    #[must_use]
    pub fn render_table(&self) -> String {
        let header = [
            "cell", "n", "edges", "Δ", "status", "ok?", "rounds", "beeps", "ms",
        ];
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.cells.len());
        for c in &self.cells {
            rows.push(vec![
                c.id.clone(),
                c.n.to_string(),
                c.edges.to_string(),
                c.max_degree.to_string(),
                c.status.as_str().into(),
                if c.status == CellStatus::Ok {
                    c.success.to_string()
                } else {
                    "-".into()
                },
                c.rounds.to_string(),
                c.beeps.to_string(),
                format!("{:.1}", c.wall_ms),
            ]);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = format!("== campaign {} ==\n", self.campaign);
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, (w, cell)) in widths.iter().zip(cells).enumerate() {
                let pad = w - cell.chars().count();
                if i == 0 {
                    // Left-align the id column.
                    out.push(' ');
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad + 1));
                } else {
                    out.push(' ');
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        let header: Vec<String> = header.iter().map(ToString::to_string).collect();
        render_row(&mut out, &header);
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>()));
        out.push('\n');
        for row in &rows {
            render_row(&mut out, row);
        }
        let s = self.summary();
        out.push_str(&format!(
            "{} cells: {} ok ({} successful, rate {:.2}), {} failed, {} skipped; \
             {} rounds, {} beeps, {:.0} ms\n",
            s.cells,
            s.ok,
            s.successes,
            s.success_rate,
            s.failed,
            s.skipped,
            s.total_rounds,
            s.total_beeps,
            self.wall_ms,
        ));
        out
    }
}

/// Validates a parsed report against the version-4 schema: identifier and
/// version match, the cell set is non-empty, every cell carries the
/// required typed fields (including its `channel` and `faults` labels),
/// and the summary is consistent with the cells.
///
/// # Errors
///
/// [`ScenarioError::Report`] naming the first violation.
pub fn validate_report(json: &Json) -> Result<(), ScenarioError> {
    let fail = |detail: String| Err(ScenarioError::Report { detail });
    match json.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA_NAME => {}
        other => return fail(format!("schema is {other:?}, expected {SCHEMA_NAME:?}")),
    }
    match json.get("version").and_then(Json::as_i64) {
        Some(v) if v == SCHEMA_VERSION => {}
        other => return fail(format!("version is {other:?}, expected {SCHEMA_VERSION}")),
    }
    if json.get("campaign").and_then(Json::as_str).is_none() {
        return fail("missing campaign name".into());
    }
    let cells = match json.get("cells").and_then(Json::as_array) {
        Some(cells) => cells,
        None => return fail("missing cells array".into()),
    };
    if cells.is_empty() {
        return fail("cell set is empty".into());
    }
    let mut ok = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let ctx = |what: &str| format!("cell {i}: {what}");
        if cell.get("id").and_then(Json::as_str).is_none() {
            return fail(ctx("missing id"));
        }
        for key in ["n", "edges", "max_degree", "rounds", "beeps", "seed"] {
            match cell.get(key).and_then(Json::as_i64) {
                Some(v) if v >= 0 => {}
                _ => return fail(ctx(&format!("missing or negative {key}"))),
            }
        }
        if cell.get("epsilon").and_then(Json::as_f64).is_none() {
            return fail(ctx("missing epsilon"));
        }
        if cell.get("channel").and_then(Json::as_str).is_none() {
            return fail(ctx("missing channel"));
        }
        if cell.get("faults").and_then(Json::as_str).is_none() {
            return fail(ctx("missing faults"));
        }
        if cell.get("protocol").and_then(Json::as_str).is_none() {
            return fail(ctx("missing protocol"));
        }
        if cell.get("success").and_then(Json::as_bool).is_none() {
            return fail(ctx("missing success"));
        }
        match cell.get("status").and_then(Json::as_str) {
            Some("ok") => ok += 1,
            Some("failed" | "skipped") => {}
            other => return fail(ctx(&format!("bad status {other:?}"))),
        }
    }
    let summary = json.get("summary").ok_or(ScenarioError::Report {
        detail: "missing summary".into(),
    })?;
    if summary.get("cells").and_then(Json::as_i64)
        != Some(i64::try_from(cells.len()).expect("cell count fits"))
    {
        return fail("summary.cells disagrees with the cells array".into());
    }
    if summary.get("ok").and_then(Json::as_i64) != Some(i64::try_from(ok).expect("fits")) {
        return fail("summary.ok disagrees with the cells array".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_cell(id: &str, status: CellStatus, success: bool) -> CellResult {
        CellResult {
            id: id.into(),
            family: "cycle".into(),
            requested_n: 8,
            n: 8,
            edges: 8,
            max_degree: 2,
            topology_params: vec![],
            epsilon: 0.05,
            channel: "eps0.05".into(),
            faults: "none".into(),
            protocol: "matching".into(),
            seed: 1,
            cell_seed: 0xABCD,
            status,
            success,
            rounds: 100,
            beeps: 42,
            metrics: vec![("congest_rounds".into(), 5.0)],
            detail: String::new(),
            wall_ms: 1.5,
        }
    }

    fn demo_report() -> CampaignReport {
        CampaignReport {
            campaign: "demo".into(),
            cells: vec![
                demo_cell("a", CellStatus::Ok, true),
                demo_cell("b", CellStatus::Ok, false),
                demo_cell("c", CellStatus::Failed, false),
                demo_cell("d", CellStatus::Skipped, false),
            ],
            wall_ms: 10.0,
        }
    }

    #[test]
    fn cell_results_round_trip_through_json() {
        // The checkpoint journal's replay contract: to_json → from_json
        // is the identity, timing included.
        let cell = demo_cell("cycle/n8/eps0.05/matching/s1", CellStatus::Ok, true);
        let back = CellResult::from_json(&cell.to_json(true)).unwrap();
        assert_eq!(back, cell);
        // Without timing the wall clock reads back as zero; everything
        // else is untouched.
        let back = CellResult::from_json(&cell.to_json(false)).unwrap();
        assert_eq!(
            back,
            CellResult {
                wall_ms: 0.0,
                ..cell
            }
        );
    }

    #[test]
    fn cell_from_json_rejects_malformed_records() {
        let good = demo_cell("a", CellStatus::Failed, false).to_json(true);
        for (from, to, needle) in [
            (
                "\"status\": \"failed\"",
                "\"status\": \"gone\"",
                "bad status",
            ),
            ("\"id\": \"a\"", "\"ident\": \"a\"", "missing string id"),
            ("\"rounds\": 100", "\"rounds\": -1", "negative rounds"),
            (
                "\"cell_seed\": \"0x000000000000abcd\"",
                "\"cell_seed\": \"zz\"",
                "malformed cell_seed",
            ),
        ] {
            let text = good.to_pretty().replacen(from, to, 1);
            assert_ne!(text, good.to_pretty(), "{from} not found");
            let err = CellResult::from_json(&Json::parse(&text).unwrap()).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn summary_aggregates_by_status() {
        let s = demo_report().summary();
        assert_eq!((s.cells, s.ok, s.failed, s.skipped), (4, 2, 1, 1));
        assert_eq!(s.successes, 1);
        assert!((s.success_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.total_rounds, 200);
        assert_eq!(s.total_beeps, 84);
    }

    #[test]
    fn json_without_timing_has_no_wall_fields() {
        let j = demo_report().to_json(false).to_pretty();
        assert!(!j.contains("wall_ms"));
        let j = demo_report().to_json(true).to_pretty();
        assert!(j.contains("wall_ms"));
    }

    #[test]
    fn own_reports_validate() {
        let j = demo_report().to_json(true);
        validate_report(&j).unwrap();
        let j = demo_report().to_json(false);
        validate_report(&j).unwrap();
    }

    #[test]
    fn validation_rejects_corruption() {
        let good = demo_report().to_json(false).to_pretty();
        for (from, to, needle) in [
            ("beep-campaign-report", "other-schema", "schema"),
            ("\"version\": 4", "\"version\": 5", "version"),
            (
                "\"status\": \"failed\"",
                "\"status\": \"exploded\"",
                "bad status",
            ),
            (
                "\"channel\": \"eps0.05\"",
                "\"chan\": \"eps0.05\"",
                "channel",
            ),
            ("\"faults\": \"none\"", "\"fault\": \"none\"", "faults"),
            ("\"ok\": 2", "\"ok\": 3", "summary.ok"),
        ] {
            let bad = good.replacen(from, to, 1);
            assert_ne!(bad, good, "{from} not found");
            let err = validate_report(&Json::parse(&bad).unwrap()).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn empty_cell_set_fails_validation() {
        let report = CampaignReport {
            campaign: "empty".into(),
            cells: vec![],
            wall_ms: 0.0,
        };
        let err = validate_report(&report.to_json(false)).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn table_renders_all_cells() {
        let table = demo_report().render_table();
        assert!(table.contains("== campaign demo =="));
        assert!(table.contains("skipped"));
        assert!(table.contains("4 cells: 2 ok"));
    }
}
