//! Campaign execution: expand the spec, run every cell on the engine —
//! in parallel across worker threads — and assemble the report.
//!
//! Cell results are written into their matrix slot regardless of which
//! worker ran them, so the report is identical at every thread count;
//! only the `wall_ms` fields vary. Within one sweep seed, every
//! `(channel, protocol)` cell of a given family × size runs on the
//! *same* graph instance (the topology seed is derived from
//! `family/size/sweep-seed` only), so protocol and channel comparisons
//! are apples-to-apples. Each cell instantiates its channel against the
//! realized node count (the adversary's budget scales with `n`), realizes
//! its fault plan (if any) from the cell seed, and dispatches through
//! [`beep_apps::Protocol::run_with_faults`]; noiseless-only protocols
//! under a noisy channel — and fault-intolerant protocols under a
//! non-empty fault plan — become skipped cells.

use crate::error::ScenarioError;
use crate::report::{CampaignReport, CellResult, CellStatus};
use crate::spec::{cell_seed, CampaignSpec, CellSpec};
use beep_apps::AppError;
use beep_net::{FaultPlan, Graph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A built (or unbuildable) topology instance, shared by all the cells
/// of one family × size × sweep-seed group.
type BuiltInstance = Result<(Graph, Vec<(String, f64)>), ScenarioError>;

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Worker threads; 0 = one per core (capped at the cell count).
    pub threads: usize,
}

/// Runs a campaign to completion.
///
/// # Errors
///
/// [`ScenarioError::EmptyMatrix`] if the spec expands to zero cells.
/// Individual cell failures never abort the campaign — they are recorded
/// as `failed`/`skipped` cells.
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &RunOptions,
) -> Result<CampaignReport, ScenarioError> {
    let cells = spec.expand()?;
    let start = Instant::now();
    let workers = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        options.threads
    }
    .min(cells.len())
    .max(1);

    // Build each unique topology instance once — not once per cell: the
    // (ε, protocol) cells of one family × size × sweep-seed share the
    // graph, and a large random instance can dominate cell runtime.
    let instances: HashMap<String, BuiltInstance> = {
        let mut map = HashMap::new();
        for cell in &cells {
            map.entry(instance_key(cell))
                .or_insert_with(|| cell.family.build(cell.requested_n, topology_seed(cell)));
        }
        map
    };

    let mut results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; cells.len()]);
    let next = AtomicUsize::new(0);
    if workers == 1 {
        let results = results.get_mut().expect("unshared");
        for (i, cell) in cells.iter().enumerate() {
            results[i] = Some(run_cell(cell, &instances[&instance_key(cell)]));
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = run_cell(cell, &instances[&instance_key(cell)]);
                    results.lock().expect("no poisoned workers")[i] = Some(result);
                });
            }
        });
    }

    let cells = results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    Ok(CampaignReport {
        campaign: spec.name.clone(),
        cells,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// The key grouping cells that share one topology instance: every
/// (ε, protocol) cell of a family × size within one sweep seed.
fn instance_key(cell: &CellSpec) -> String {
    format!(
        "{}/n{}/s{}/topology",
        cell.family.label(),
        cell.requested_n,
        cell.sweep_seed
    )
}

/// The topology instance seed, derived from the group key.
fn topology_seed(cell: &CellSpec) -> u64 {
    cell_seed(&instance_key(cell))
}

fn run_cell(cell: &CellSpec, built: &BuiltInstance) -> CellResult {
    let start = Instant::now();
    let mut result = CellResult {
        id: cell.id.clone(),
        family: cell.family.label(),
        requested_n: cell.requested_n,
        n: 0,
        edges: 0,
        max_degree: 0,
        topology_params: Vec::new(),
        epsilon: cell.epsilon,
        channel: cell.channel.label(),
        faults: cell
            .fault
            .as_ref()
            .map_or_else(|| "none".into(), super::spec::FaultSpec::label),
        protocol: cell.protocol.name().into(),
        seed: cell.sweep_seed,
        cell_seed: cell.cell_seed,
        status: CellStatus::Skipped,
        success: false,
        rounds: 0,
        beeps: 0,
        metrics: Vec::new(),
        detail: String::new(),
        wall_ms: 0.0,
    };
    match built {
        Err(e) => {
            result.status = CellStatus::Skipped;
            result.detail = e.to_string();
        }
        Ok((graph, params)) => {
            result.n = graph.node_count();
            result.edges = graph.edge_count();
            result.max_degree = graph.max_degree();
            result.topology_params = params.clone();
            // The channel instantiates against the realized size (the
            // adversary's budget is a fraction of n), and the fault plan
            // realizes against it too (the faulty *count* is a fraction
            // of n, the set drawn from the cell seed's reserved stream).
            // Parse-time range checks make build failures unreachable
            // for file-parsed specs, but programmatic ones record a
            // failed cell.
            let built_channel =
                cell.channel
                    .build(graph.node_count())
                    .map_err(|e| AppError::InvalidOutput {
                        detail: e.to_string(),
                    });
            let plan = cell.fault.as_ref().map_or_else(
                || Ok(FaultPlan::none()),
                |f| {
                    f.realize(graph.node_count(), cell.cell_seed)
                        .map_err(AppError::Net)
                },
            );
            let run = match (built_channel, plan) {
                (Err(e), _) | (_, Err(e)) => Err(e),
                // A panicking protocol (e.g. an assert on a degenerate
                // graph) must not take down the campaign — or, worse,
                // poison the worker pool: it becomes a failed cell like
                // any other error.
                (Ok(channel), Ok(plan)) => {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cell.protocol
                            .run_with_faults(graph, &channel, &plan, cell.cell_seed)
                    }))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(ToString::to_string)
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(AppError::InvalidOutput {
                            detail: format!("protocol panicked: {msg}"),
                        })
                    })
                }
            };
            match run {
                Ok(outcome) => {
                    result.status = CellStatus::Ok;
                    result.success = outcome.success;
                    result.rounds = outcome.rounds;
                    result.beeps = outcome.beeps;
                    result.metrics = outcome
                        .metrics
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect();
                }
                Err(
                    e @ (AppError::NoiseUnsupported { .. } | AppError::FaultsUnsupported { .. }),
                ) => {
                    result.status = CellStatus::Skipped;
                    result.detail = e.to_string();
                }
                Err(e) => {
                    result.status = CellStatus::Failed;
                    result.detail = e.to_string();
                }
            }
        }
    }
    result.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelSpec, TopologyFamily, TopologySpec};
    use beep_apps::Protocol;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            topologies: vec![
                TopologySpec {
                    family: TopologyFamily::Cycle,
                    sizes: vec![6],
                },
                TopologySpec {
                    family: TopologyFamily::Torus,
                    sizes: vec![9],
                },
            ],
            epsilons: vec![0.0, 0.05],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Wave, Protocol::RoundSim],
            seeds: vec![1],
        }
    }

    #[test]
    fn campaign_runs_and_classifies_cells() {
        let report = run_campaign(&small_spec(), &RunOptions::default()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        let s = report.summary();
        // Wave at ε > 0 is skipped; everything else runs and succeeds.
        assert_eq!(s.skipped, 2);
        assert_eq!(s.ok, 6);
        assert_eq!(s.failed, 0);
        assert_eq!(s.successes, 6, "{}", report.render_table());
    }

    #[test]
    fn reports_are_thread_count_invariant_modulo_timing() {
        let spec = small_spec();
        let serial = run_campaign(&spec, &RunOptions { threads: 1 }).unwrap();
        let parallel = run_campaign(&spec, &RunOptions { threads: 4 }).unwrap();
        assert_eq!(
            serial.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn shared_topology_instance_across_protocols() {
        let report = run_campaign(&small_spec(), &RunOptions { threads: 1 }).unwrap();
        // Same family/size/seed ⇒ same realized graph facts across ε and
        // protocol cells.
        let torus: Vec<&CellResult> = report
            .cells
            .iter()
            .filter(|c| c.family == "torus")
            .collect();
        assert!(torus.len() > 1);
        assert!(torus.iter().all(|c| c.n == torus[0].n));
        assert!(torus.iter().all(|c| c.edges == torus[0].edges));
    }

    #[test]
    fn panicking_protocol_becomes_a_failed_cell() {
        // grid at size 0 builds a 0-node graph; leader election asserts
        // on it. The campaign must record a failed cell, not abort —
        // including on the threaded path.
        let spec = CampaignSpec {
            name: "panic".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Grid,
                sizes: vec![0],
            }],
            epsilons: vec![0.0],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Leader, Protocol::Wave],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &RunOptions { threads: 2 }).unwrap();
        let leader = report
            .cells
            .iter()
            .find(|c| c.protocol == "leader")
            .unwrap();
        assert_eq!(leader.status, CellStatus::Failed);
        assert!(leader.detail.contains("panicked"), "{}", leader.detail);
    }

    #[test]
    fn channel_axis_cells_run_skip_and_stay_thread_invariant() {
        let spec = CampaignSpec {
            name: "channels".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Cycle,
                sizes: vec![6],
            }],
            epsilons: vec![0.05],
            channels: vec![
                ChannelSpec::GilbertElliott {
                    eps_good: 0.01,
                    eps_bad: 0.2,
                    p_good_to_bad: 0.1,
                    p_bad_to_good: 0.5,
                },
                ChannelSpec::PerNode {
                    pattern: vec![0.0, 0.05],
                },
                ChannelSpec::Adversarial {
                    budget_frac: 0.2,
                    design_epsilon: 0.05,
                },
            ],
            faults: vec![],
            protocols: vec![Protocol::RoundSim, Protocol::Wave],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &RunOptions { threads: 1 }).unwrap();
        assert_eq!(report.cells.len(), 4 * 2);
        for cell in &report.cells {
            match cell.protocol.as_str() {
                // The flood pipeline must run under every channel family.
                "round_sim" => {
                    assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
                    assert!(cell.rounds > 0, "{}", cell.id);
                }
                // The noiseless-only wave is skipped under every noisy
                // channel (the detail carries the *instantiated* channel
                // label, e.g. `adv-b2-…` for the budget realized on n=6).
                _ => {
                    assert_eq!(cell.status, CellStatus::Skipped, "{}", cell.id);
                    assert!(cell.detail.contains("noiseless-only"), "{}", cell.detail);
                }
            }
        }
        let labels: Vec<&str> = report.cells.iter().map(|c| c.channel.as_str()).collect();
        assert!(labels.contains(&"eps0.05"));
        assert!(labels.contains(&"ge-g0.01-b0.2-pgb0.1-pbg0.5"));
        assert!(labels.contains(&"pernode-0-0.05"));
        assert!(labels.contains(&"adv-f0.2-e0.05"));
        // The report stays byte-identical across worker counts.
        let parallel = run_campaign(&spec, &RunOptions { threads: 4 }).unwrap();
        assert_eq!(
            report.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn fault_axis_cells_run_skip_and_stay_thread_invariant() {
        use crate::spec::FaultSpec;
        use beep_net::FaultKind;
        let spec = CampaignSpec {
            name: "faults".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Complete,
                sizes: vec![8],
            }],
            epsilons: vec![0.1],
            channels: vec![],
            faults: vec![
                FaultSpec {
                    kind: FaultKind::Crash { round: 4 },
                    fraction: 0.25,
                },
                FaultSpec {
                    kind: FaultKind::ByzantineSpam,
                    fraction: 0.125,
                },
            ],
            protocols: vec![Protocol::BeepConsensus, Protocol::Matching],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &RunOptions { threads: 1 }).unwrap();
        // (1 channel) × (fault-free + 2 faults) × 2 protocols × 1 seed.
        assert_eq!(report.cells.len(), 3 * 2);
        for cell in &report.cells {
            match (cell.protocol.as_str(), cell.faults.as_str()) {
                // Consensus runs everywhere, faulted or not.
                ("beep_consensus", _) => {
                    assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
                    assert!(cell.success, "{}: {}", cell.id, cell.detail);
                }
                // Matching runs fault-free but has no fault story: a
                // non-empty plan makes it a skipped cell, not a failure.
                ("matching", "none") => {
                    assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
                }
                ("matching", _) => {
                    assert_eq!(cell.status, CellStatus::Skipped, "{}", cell.id);
                    assert!(
                        cell.detail.contains("fault-tolerance"),
                        "{}: {}",
                        cell.id,
                        cell.detail
                    );
                }
                other => panic!("unexpected cell {other:?}"),
            }
        }
        let labels: Vec<&str> = report.cells.iter().map(|c| c.faults.as_str()).collect();
        assert!(labels.contains(&"none"));
        assert!(labels.contains(&"crash-f0.25-r4"));
        assert!(labels.contains(&"spam-f0.125"));
        // Faulted cells carry the six-segment id and report their label.
        let faulted = report
            .cells
            .iter()
            .find(|c| c.faults == "spam-f0.125" && c.protocol == "beep_consensus")
            .unwrap();
        assert_eq!(
            faulted.id,
            "complete/n8/eps0.1/spam-f0.125/beep_consensus/s1"
        );
        // The report stays byte-identical across worker counts.
        let parallel = run_campaign(&spec, &RunOptions { threads: 4 }).unwrap();
        assert_eq!(
            report.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn unrealizable_topology_is_skipped_not_fatal() {
        let spec = CampaignSpec {
            name: "bad-torus".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Torus,
                sizes: vec![4], // below the 3×3 minimum
            }],
            epsilons: vec![0.0],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Wave],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &RunOptions::default()).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].status, CellStatus::Skipped);
        assert!(report.cells[0].detail.contains("torus"));
    }
}
