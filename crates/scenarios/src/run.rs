//! Campaign execution: the engine-agnostic executor behind every
//! campaign entry point.
//!
//! The executor expands the spec, runs cells on the engine in parallel
//! across worker threads, and hands each completed [`CellResult`] to a
//! pluggable [`ResultSink`] — the in-memory report assembly
//! ([`MemorySink`]) is just one sink, the incremental JSONL checkpoint
//! journal ([`CheckpointSink`](crate::checkpoint::CheckpointSink)) is
//! another, and they compose ([`TeeSink`](crate::sink::TeeSink)). Three
//! entry points share it:
//!
//! * [`run_campaign`] — the classic one-shot: every cell, report out.
//! * [`run_campaign_with_sink`] — bring your own sink (and optionally a
//!   shared [`InstanceCache`]); what the campaign daemon builds on.
//! * [`run_campaign_resumable`] — checkpointed execution: replay the
//!   journal's completed cells, run only the remainder, stream new
//!   completions back to the journal.
//!
//! Cell results are recorded under their matrix index regardless of
//! which worker ran them, so the report is identical at every thread
//! count; only the `wall_ms` fields vary. Topology instances build
//! **lazily, once per group, from the worker pool**: the first worker to
//! reach a `family × size × sweep-seed` group builds the instance inside
//! its [`std::sync::OnceLock`] (the build is seeded by the group key, so
//! *which* worker builds it cannot matter), later workers share it, and
//! groups whose every cell is replayed from a checkpoint never build at
//! all. An [`InstanceCache`] handed to [`run_campaign_with_sink`]
//! carries those instances across campaigns — the daemon's cache.
//!
//! Builds and protocol runs are both panic-guarded: a panicking topology
//! generator fails that group's cells, and a panicking protocol fails
//! its cell, without aborting the campaign or poisoning the worker pool.
//!
//! Each cell instantiates its channel against the realized node count
//! (the adversary's budget scales with `n`), realizes its fault plan (if
//! any) from the cell seed, and dispatches through
//! [`beep_apps::Protocol::run_with_faults`]; noiseless-only protocols
//! under a noisy channel — and fault-intolerant protocols under a
//! non-empty fault plan — become skipped cells.

use crate::checkpoint::{load_checkpoint, CheckpointSink};
use crate::error::ScenarioError;
use crate::report::{CampaignReport, CellResult, CellStatus};
use crate::sink::{MemorySink, ResultSink, TeeSink};
use crate::spec::{cell_seed, CampaignSpec, CellSpec};
use beep_apps::AppError;
use beep_net::{FaultPlan, Graph};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Why a topology instance is unusable, and how its cells report it:
/// generator *errors* (unrealizable sizes) are structural — skipped —
/// while generator *panics* are failures, mirroring protocol panics.
#[derive(Debug)]
struct BuildFailure {
    status: CellStatus,
    detail: String,
}

/// A built (or unbuildable) topology instance, shared by all the cells
/// of one family × size × sweep-seed group.
type BuiltInstance = Result<(Graph, Vec<(String, f64)>), BuildFailure>;

/// Lazily built topology instances, keyed by the cell group
/// (`family/n{size}/s{seed}/topology`). Safe to share across campaigns
/// and threads: instance seeds derive from the group key alone, so a
/// cache hit is byte-equivalent to a rebuild. The campaign daemon keeps
/// one of these alive across every campaign it serves.
#[derive(Debug, Default)]
pub struct InstanceCache {
    inner: Mutex<HashMap<String, Arc<OnceLock<BuiltInstance>>>>,
}

impl InstanceCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> InstanceCache {
        InstanceCache::default()
    }

    /// Instance groups resident in the cache (built or building).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The group's `OnceLock` slot, inserted empty on first touch. The
    /// map lock is held only for the lookup — builds happen outside it,
    /// serialized per group by the `OnceLock` itself.
    fn slot(&self, key: String) -> Arc<OnceLock<BuiltInstance>> {
        self.inner
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_default()
            .clone()
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Worker threads; 0 = one per core (capped at the cell count).
    pub threads: usize,
    /// Stop dispatching after this many cells complete (taken from the
    /// front of the pending list in matrix order) — the deterministic
    /// "interrupted campaign" used by the checkpoint/resume tests and
    /// the CI resume smoke. `None` runs everything.
    pub max_cells: Option<usize>,
}

/// What a resumable run did.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The assembled report, or `None` when a `max_cells` cut stopped
    /// the run before every cell completed (the checkpoint holds the
    /// progress; resume to finish).
    pub report: Option<CampaignReport>,
    /// Cells in the expanded matrix.
    pub total: usize,
    /// Cells replayed from the checkpoint journal.
    pub replayed: usize,
    /// Cells executed fresh this run.
    pub executed: usize,
}

/// Runs a campaign to completion and assembles the in-memory report.
///
/// # Errors
///
/// [`ScenarioError::EmptyMatrix`] if the spec expands to zero cells;
/// [`ScenarioError::Incomplete`] if `options.max_cells` stopped the run
/// early (use [`run_campaign_resumable`] for interruptible runs).
/// Individual cell failures never abort the campaign — they are recorded
/// as `failed`/`skipped` cells.
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &RunOptions,
) -> Result<CampaignReport, ScenarioError> {
    let start = Instant::now();
    let cells = spec.expand()?;
    let mut memory = MemorySink::new(spec.name.clone(), cells.len());
    let pending: Vec<usize> = (0..cells.len()).collect();
    let completed = execute(
        &cells,
        &pending,
        options,
        &InstanceCache::new(),
        &mut memory,
    )?;
    memory
        .try_into_report(start.elapsed().as_secs_f64() * 1e3)
        .ok_or(ScenarioError::Incomplete {
            completed,
            total: cells.len(),
        })
}

/// Runs a campaign through a caller-supplied sink — the engine-agnostic
/// executor surface. `cache` may be shared across campaigns (the daemon
/// keeps one process-wide); pass a fresh [`InstanceCache`] when reuse is
/// unwanted. Returns the number of cells completed (all of them, unless
/// `options.max_cells` cut the run short).
///
/// # Errors
///
/// [`ScenarioError::EmptyMatrix`] on an empty expansion; any error a
/// sink returns from [`ResultSink::record`] (the executor stops
/// dispatching and surfaces the first one).
pub fn run_campaign_with_sink(
    spec: &CampaignSpec,
    options: &RunOptions,
    cache: &InstanceCache,
    sink: &mut dyn ResultSink,
) -> Result<usize, ScenarioError> {
    let cells = spec.expand()?;
    let pending: Vec<usize> = (0..cells.len()).collect();
    execute(&cells, &pending, options, cache, sink)
}

/// Checkpointed execution: load `checkpoint` (if it exists), verify its
/// spec fingerprint, replay its completed cells, execute only the
/// remainder (streaming each completion back to the journal), and
/// assemble the final report.
///
/// The resume contract — pinned by `tests/checkpoint_resume.rs` and the
/// CI resume smoke — is that the final `--no-timing` report is
/// byte-identical to an uninterrupted [`run_campaign`] of the same spec:
/// cell seeds are pure functions of cell ids, so a replayed cell and a
/// re-executed cell are the same cell.
///
/// # Errors
///
/// [`ScenarioError::EmptyMatrix`] on an empty expansion;
/// [`ScenarioError::Checkpoint`] if the journal is unreadable, corrupt,
/// or fingerprint-mismatched (it belongs to a different campaign).
pub fn run_campaign_resumable(
    spec: &CampaignSpec,
    options: &RunOptions,
    checkpoint: &Path,
) -> Result<ResumeOutcome, ScenarioError> {
    let start = Instant::now();
    let cells = spec.expand()?;
    let mut memory = MemorySink::new(spec.name.clone(), cells.len());
    let mut done = vec![false; cells.len()];
    let mut replayed = 0usize;
    let mut journal = match load_checkpoint(checkpoint, spec, &cells)? {
        Some(loaded) => {
            for (index, cell) in &loaded.completed {
                memory.record(*index, cell)?;
                done[*index] = true;
            }
            replayed = loaded.completed.len();
            CheckpointSink::append(checkpoint)?
        }
        None => CheckpointSink::create(checkpoint, spec, &cells)?,
    };
    let pending: Vec<usize> = (0..cells.len()).filter(|&i| !done[i]).collect();
    let executed = {
        let mut tee = TeeSink(&mut memory, &mut journal);
        execute(&cells, &pending, options, &InstanceCache::new(), &mut tee)?
    };
    Ok(ResumeOutcome {
        report: memory.try_into_report(start.elapsed().as_secs_f64() * 1e3),
        total: cells.len(),
        replayed,
        executed,
    })
}

/// The executor core: run `pending` (indices into `cells`, truncated by
/// `options.max_cells`) across the worker pool, recording each
/// completion into `sink` under one lock.
fn execute(
    cells: &[CellSpec],
    pending: &[usize],
    options: &RunOptions,
    cache: &InstanceCache,
    sink: &mut dyn ResultSink,
) -> Result<usize, ScenarioError> {
    let limit = options
        .max_cells
        .unwrap_or(pending.len())
        .min(pending.len());
    let pending = &pending[..limit];
    struct SinkState<'a> {
        sink: &'a mut dyn ResultSink,
        error: Option<ScenarioError>,
        completed: usize,
    }
    let shared = Mutex::new(SinkState {
        sink,
        error: None,
        completed: 0,
    });
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let work = || loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let k = next.fetch_add(1, Ordering::Relaxed);
        let Some(&index) = pending.get(k) else { break };
        let cell = &cells[index];
        // Lazy, once-per-group, from the worker pool: the OnceLock
        // serializes concurrent initializers of one group while other
        // groups build in parallel.
        let slot = cache.slot(instance_key(cell));
        let built = slot.get_or_init(|| build_instance(cell));
        let result = run_cell(cell, built);
        let mut state = shared.lock().expect("no poisoned workers");
        if state.error.is_some() {
            break;
        }
        match state.sink.record(index, &result) {
            Ok(()) => state.completed += 1,
            Err(e) => {
                state.error = Some(e);
                abort.store(true, Ordering::Relaxed);
                break;
            }
        }
    };

    let workers = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        options.threads
    }
    .min(pending.len())
    .max(1);
    if workers == 1 {
        work();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(work);
            }
        });
    }

    let state = shared.into_inner().expect("workers joined");
    match state.error {
        Some(e) => Err(e),
        None => Ok(state.completed),
    }
}

/// The key grouping cells that share one topology instance: every
/// (ε, protocol) cell of a family × size within one sweep seed.
fn instance_key(cell: &CellSpec) -> String {
    format!(
        "{}/n{}/s{}/topology",
        cell.family.label(),
        cell.requested_n,
        cell.sweep_seed
    )
}

/// The topology instance seed, derived from the group key.
fn topology_seed(cell: &CellSpec) -> u64 {
    cell_seed(&instance_key(cell))
}

/// The requested size the test-only build hook panics on — a seam for
/// proving the executor survives a panicking topology generator (every
/// shipped generator is total over its error type, so there is no
/// organic input that unwinds).
#[cfg(test)]
const PANICKING_BUILD_N: usize = 0x0BAD_BEEF;

/// Renders a caught panic payload (`&str` / `String` are the common
/// shapes; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Builds one group's topology instance, panic-guarded: a panicking
/// generator must fail that group's cells, not abort the campaign (or
/// poison a `OnceLock` mid-init).
fn build_instance(cell: &CellSpec) -> BuiltInstance {
    let seed = topology_seed(cell);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(test)]
        assert_ne!(
            cell.requested_n, PANICKING_BUILD_N,
            "injected topology-build panic"
        );
        cell.family.build(cell.requested_n, seed)
    }));
    match attempt {
        Ok(Ok(instance)) => Ok(instance),
        // Generator errors (unrealizable sizes) are structural: skipped.
        Ok(Err(e)) => Err(BuildFailure {
            status: CellStatus::Skipped,
            detail: e.to_string(),
        }),
        // Generator panics are bugs surfacing: failed, like protocol
        // panics.
        Err(payload) => Err(BuildFailure {
            status: CellStatus::Failed,
            detail: format!("topology build panicked: {}", panic_message(&*payload)),
        }),
    }
}

fn run_cell(cell: &CellSpec, built: &BuiltInstance) -> CellResult {
    let start = Instant::now();
    let mut result = CellResult {
        id: cell.id.clone(),
        family: cell.family.label(),
        requested_n: cell.requested_n,
        n: 0,
        edges: 0,
        max_degree: 0,
        topology_params: Vec::new(),
        epsilon: cell.epsilon,
        channel: cell.channel.label(),
        faults: cell
            .fault
            .as_ref()
            .map_or_else(|| "none".into(), super::spec::FaultSpec::label),
        protocol: cell.protocol.name().into(),
        seed: cell.sweep_seed,
        cell_seed: cell.cell_seed,
        status: CellStatus::Skipped,
        success: false,
        rounds: 0,
        beeps: 0,
        metrics: Vec::new(),
        detail: String::new(),
        wall_ms: 0.0,
    };
    match built {
        Err(failure) => {
            result.status = failure.status;
            result.detail = failure.detail.clone();
        }
        Ok((graph, params)) => {
            result.n = graph.node_count();
            result.edges = graph.edge_count();
            result.max_degree = graph.max_degree();
            result.topology_params = params.clone();
            // The channel instantiates against the realized size (the
            // adversary's budget is a fraction of n), and the fault plan
            // realizes against it too (the faulty *count* is a fraction
            // of n, the set drawn from the cell seed's reserved stream).
            // Parse-time range checks make build failures unreachable
            // for file-parsed specs, but programmatic ones record a
            // failed cell.
            let built_channel =
                cell.channel
                    .build(graph.node_count())
                    .map_err(|e| AppError::InvalidOutput {
                        detail: e.to_string(),
                    });
            let plan = cell.fault.as_ref().map_or_else(
                || Ok(FaultPlan::none()),
                |f| {
                    f.realize(graph.node_count(), cell.cell_seed)
                        .map_err(AppError::Net)
                },
            );
            let run = match (built_channel, plan) {
                (Err(e), _) | (_, Err(e)) => Err(e),
                // A panicking protocol (e.g. an assert on a degenerate
                // graph) must not take down the campaign — or, worse,
                // poison the worker pool: it becomes a failed cell like
                // any other error.
                (Ok(channel), Ok(plan)) => catch_unwind(AssertUnwindSafe(|| {
                    cell.protocol
                        .run_with_faults(graph, &channel, &plan, cell.cell_seed)
                }))
                .unwrap_or_else(|payload| {
                    Err(AppError::InvalidOutput {
                        detail: format!("protocol panicked: {}", panic_message(&*payload)),
                    })
                }),
            };
            match run {
                Ok(outcome) => {
                    result.status = CellStatus::Ok;
                    result.success = outcome.success;
                    result.rounds = outcome.rounds;
                    result.beeps = outcome.beeps;
                    result.metrics = outcome
                        .metrics
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect();
                }
                Err(
                    e @ (AppError::NoiseUnsupported { .. } | AppError::FaultsUnsupported { .. }),
                ) => {
                    result.status = CellStatus::Skipped;
                    result.detail = e.to_string();
                }
                Err(e) => {
                    result.status = CellStatus::Failed;
                    result.detail = e.to_string();
                }
            }
        }
    }
    result.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelSpec, TopologyFamily, TopologySpec};
    use beep_apps::Protocol;

    fn threads(n: usize) -> RunOptions {
        RunOptions {
            threads: n,
            ..RunOptions::default()
        }
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            topologies: vec![
                TopologySpec {
                    family: TopologyFamily::Cycle,
                    sizes: vec![6],
                },
                TopologySpec {
                    family: TopologyFamily::Torus,
                    sizes: vec![9],
                },
            ],
            epsilons: vec![0.0, 0.05],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Wave, Protocol::RoundSim],
            seeds: vec![1],
        }
    }

    #[test]
    fn campaign_runs_and_classifies_cells() {
        let report = run_campaign(&small_spec(), &RunOptions::default()).unwrap();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        let s = report.summary();
        // Wave at ε > 0 is skipped; everything else runs and succeeds.
        assert_eq!(s.skipped, 2);
        assert_eq!(s.ok, 6);
        assert_eq!(s.failed, 0);
        assert_eq!(s.successes, 6, "{}", report.render_table());
    }

    #[test]
    fn reports_are_thread_count_invariant_modulo_timing() {
        let spec = small_spec();
        let serial = run_campaign(&spec, &threads(1)).unwrap();
        let parallel = run_campaign(&spec, &threads(4)).unwrap();
        assert_eq!(
            serial.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn shared_topology_instance_across_protocols() {
        let report = run_campaign(&small_spec(), &threads(1)).unwrap();
        // Same family/size/seed ⇒ same realized graph facts across ε and
        // protocol cells.
        let torus: Vec<&CellResult> = report
            .cells
            .iter()
            .filter(|c| c.family == "torus")
            .collect();
        assert!(torus.len() > 1);
        assert!(torus.iter().all(|c| c.n == torus[0].n));
        assert!(torus.iter().all(|c| c.edges == torus[0].edges));
    }

    #[test]
    fn instance_cache_is_lazy_and_reusable_across_campaigns() {
        let spec = small_spec();
        let cache = InstanceCache::new();
        assert!(cache.is_empty());
        let mut first = MemorySink::new(spec.name.clone(), 8);
        run_campaign_with_sink(&spec, &threads(2), &cache, &mut first).unwrap();
        // One lazily built instance per family × size × sweep-seed group.
        assert_eq!(cache.len(), 2);
        // A second campaign over the same grid reuses the cache (no new
        // groups) and reproduces the report byte for byte.
        let mut second = MemorySink::new(spec.name.clone(), 8);
        run_campaign_with_sink(&spec, &threads(1), &cache, &mut second).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(
            first
                .try_into_report(0.0)
                .unwrap()
                .to_json(false)
                .to_pretty(),
            second
                .try_into_report(0.0)
                .unwrap()
                .to_json(false)
                .to_pretty()
        );
    }

    #[test]
    fn max_cells_stops_early_and_run_campaign_reports_incomplete() {
        let spec = small_spec();
        let options = RunOptions {
            threads: 1,
            max_cells: Some(3),
        };
        let err = run_campaign(&spec, &options).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Incomplete {
                completed: 3,
                total: 8
            }
        );
    }

    #[test]
    fn sink_errors_abort_the_campaign() {
        use crate::sink::FnSink;
        let spec = small_spec();
        let mut calls = 0usize;
        let mut sink = FnSink(|_, _: &CellResult| {
            calls += 1;
            Err(ScenarioError::Report {
                detail: "sink refused".into(),
            })
        });
        let err = run_campaign_with_sink(&spec, &threads(1), &InstanceCache::new(), &mut sink)
            .unwrap_err();
        assert!(err.to_string().contains("sink refused"), "{err}");
        assert_eq!(calls, 1, "executor stops dispatching after a sink error");
    }

    #[test]
    fn panicking_protocol_becomes_a_failed_cell() {
        // grid at size 0 builds a 0-node graph; leader election asserts
        // on it. The campaign must record a failed cell, not abort —
        // including on the threaded path.
        let spec = CampaignSpec {
            name: "panic".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Grid,
                sizes: vec![0],
            }],
            epsilons: vec![0.0],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Leader, Protocol::Wave],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &threads(2)).unwrap();
        let leader = report
            .cells
            .iter()
            .find(|c| c.protocol == "leader")
            .unwrap();
        assert_eq!(leader.status, CellStatus::Failed);
        assert!(leader.detail.contains("panicked"), "{}", leader.detail);
    }

    #[test]
    fn panicking_topology_build_becomes_failed_cells() {
        // The mirror of `panicking_protocol_becomes_a_failed_cell` for
        // the *build* side: instance builds run on the worker pool, so a
        // panicking generator must fail its group's cells — with the
        // panic surfaced in the detail — while every other group still
        // runs. Injected via the test-only sentinel size (all shipped
        // generators are total).
        let spec = CampaignSpec {
            name: "build-panic".into(),
            topologies: vec![
                TopologySpec {
                    family: TopologyFamily::Grid,
                    sizes: vec![PANICKING_BUILD_N],
                },
                TopologySpec {
                    family: TopologyFamily::Cycle,
                    sizes: vec![6],
                },
            ],
            epsilons: vec![0.0],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Wave, Protocol::RoundSim],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &threads(2)).unwrap();
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            if cell.family == "grid" {
                assert_eq!(cell.status, CellStatus::Failed, "{}", cell.id);
                assert!(
                    cell.detail.contains("topology build panicked"),
                    "{}: {}",
                    cell.id,
                    cell.detail
                );
            } else {
                assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
            }
        }
        // And the threaded/serial reports agree, panics included.
        let serial = run_campaign(&spec, &threads(1)).unwrap();
        assert_eq!(
            serial.to_json(false).to_pretty(),
            report.to_json(false).to_pretty()
        );
    }

    #[test]
    fn channel_axis_cells_run_skip_and_stay_thread_invariant() {
        let spec = CampaignSpec {
            name: "channels".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Cycle,
                sizes: vec![6],
            }],
            epsilons: vec![0.05],
            channels: vec![
                ChannelSpec::GilbertElliott {
                    eps_good: 0.01,
                    eps_bad: 0.2,
                    p_good_to_bad: 0.1,
                    p_bad_to_good: 0.5,
                },
                ChannelSpec::PerNode {
                    pattern: vec![0.0, 0.05],
                },
                ChannelSpec::Adversarial {
                    budget_frac: 0.2,
                    design_epsilon: 0.05,
                },
            ],
            faults: vec![],
            protocols: vec![Protocol::RoundSim, Protocol::Wave],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &threads(1)).unwrap();
        assert_eq!(report.cells.len(), 4 * 2);
        for cell in &report.cells {
            match cell.protocol.as_str() {
                // The flood pipeline must run under every channel family.
                "round_sim" => {
                    assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
                    assert!(cell.rounds > 0, "{}", cell.id);
                }
                // The noiseless-only wave is skipped under every noisy
                // channel (the detail carries the *instantiated* channel
                // label, e.g. `adv-b2-…` for the budget realized on n=6).
                _ => {
                    assert_eq!(cell.status, CellStatus::Skipped, "{}", cell.id);
                    assert!(cell.detail.contains("noiseless-only"), "{}", cell.detail);
                }
            }
        }
        let labels: Vec<&str> = report.cells.iter().map(|c| c.channel.as_str()).collect();
        assert!(labels.contains(&"eps0.05"));
        assert!(labels.contains(&"ge-g0.01-b0.2-pgb0.1-pbg0.5"));
        assert!(labels.contains(&"pernode-0-0.05"));
        assert!(labels.contains(&"adv-f0.2-e0.05"));
        // The report stays byte-identical across worker counts.
        let parallel = run_campaign(&spec, &threads(4)).unwrap();
        assert_eq!(
            report.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn fault_axis_cells_run_skip_and_stay_thread_invariant() {
        use crate::spec::FaultSpec;
        use beep_net::FaultKind;
        let spec = CampaignSpec {
            name: "faults".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Complete,
                sizes: vec![8],
            }],
            epsilons: vec![0.1],
            channels: vec![],
            faults: vec![
                FaultSpec {
                    kind: Some(FaultKind::Crash { round: 4 }),
                    fraction: 0.25,
                    policy: None,
                },
                FaultSpec {
                    kind: Some(FaultKind::ByzantineSpam),
                    fraction: 0.125,
                    policy: None,
                },
            ],
            protocols: vec![Protocol::BeepConsensus, Protocol::Matching],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &threads(1)).unwrap();
        // (1 channel) × (fault-free + 2 faults) × 2 protocols × 1 seed.
        assert_eq!(report.cells.len(), 3 * 2);
        for cell in &report.cells {
            match (cell.protocol.as_str(), cell.faults.as_str()) {
                // Consensus runs everywhere, faulted or not.
                ("beep_consensus", _) => {
                    assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
                    assert!(cell.success, "{}: {}", cell.id, cell.detail);
                }
                // Matching runs fault-free but has no fault story: a
                // non-empty plan makes it a skipped cell, not a failure.
                ("matching", "none") => {
                    assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
                }
                ("matching", _) => {
                    assert_eq!(cell.status, CellStatus::Skipped, "{}", cell.id);
                    assert!(
                        cell.detail.contains("fault-tolerance"),
                        "{}: {}",
                        cell.id,
                        cell.detail
                    );
                }
                other => panic!("unexpected cell {other:?}"),
            }
        }
        let labels: Vec<&str> = report.cells.iter().map(|c| c.faults.as_str()).collect();
        assert!(labels.contains(&"none"));
        assert!(labels.contains(&"crash-f0.25-r4"));
        assert!(labels.contains(&"spam-f0.125"));
        // Faulted cells carry the six-segment id and report their label.
        let faulted = report
            .cells
            .iter()
            .find(|c| c.faults == "spam-f0.125" && c.protocol == "beep_consensus")
            .unwrap();
        assert_eq!(
            faulted.id,
            "complete/n8/eps0.1/spam-f0.125/beep_consensus/s1"
        );
        // The report stays byte-identical across worker counts.
        let parallel = run_campaign(&spec, &threads(4)).unwrap();
        assert_eq!(
            report.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn adaptive_policy_cells_run_the_new_protocols_and_stay_thread_invariant() {
        use crate::spec::{FaultSpec, PolicySpec};
        use beep_net::FaultKind;
        let spec = CampaignSpec {
            name: "adaptive".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Complete,
                sizes: vec![8],
            }],
            epsilons: vec![0.1],
            channels: vec![],
            faults: vec![
                FaultSpec {
                    kind: None,
                    fraction: 0.0,
                    policy: Some(PolicySpec::TargetLoudest { budget_frac: 0.125 }),
                },
                FaultSpec {
                    kind: Some(FaultKind::ByzantineMute),
                    fraction: 0.125,
                    policy: Some(PolicySpec::RushingSpam {
                        budget_frac: 0.125,
                        window: 2,
                    }),
                },
            ],
            protocols: vec![
                Protocol::BeepBenOr,
                Protocol::BeepReliableBroadcast,
                Protocol::BeepLeaderReelect,
            ],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &threads(1)).unwrap();
        // (1 channel) × (fault-free + 2 adaptive) × 3 protocols × 1 seed.
        assert_eq!(report.cells.len(), 3 * 3);
        for cell in &report.cells {
            // Adaptive cells may honestly report success = false (the
            // adversary jams *correct* nodes), but they must run.
            assert_eq!(cell.status, CellStatus::Ok, "{}: {}", cell.id, cell.detail);
            if cell.faults == "none" {
                assert!(cell.success, "{}: {}", cell.id, cell.detail);
            }
        }
        let labels: Vec<&str> = report.cells.iter().map(|c| c.faults.as_str()).collect();
        assert!(labels.contains(&"loudest-f0.125"));
        assert!(labels.contains(&"mute-f0.125+rushing-f0.125-w2"));
        let adaptive = report
            .cells
            .iter()
            .find(|c| c.faults == "loudest-f0.125" && c.protocol == "beep_ben_or")
            .unwrap();
        assert_eq!(
            adaptive.id,
            "complete/n8/eps0.1/loudest-f0.125/beep_ben_or/s1"
        );
        // The report stays byte-identical across worker counts.
        let parallel = run_campaign(&spec, &threads(4)).unwrap();
        assert_eq!(
            report.to_json(false).to_pretty(),
            parallel.to_json(false).to_pretty()
        );
    }

    #[test]
    fn unrealizable_topology_is_skipped_not_fatal() {
        let spec = CampaignSpec {
            name: "bad-torus".into(),
            topologies: vec![TopologySpec {
                family: TopologyFamily::Torus,
                sizes: vec![4], // below the 3×3 minimum
            }],
            epsilons: vec![0.0],
            channels: vec![],
            faults: vec![],
            protocols: vec![Protocol::Wave],
            seeds: vec![1],
        };
        let report = run_campaign(&spec, &RunOptions::default()).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].status, CellStatus::Skipped);
        assert!(report.cells[0].detail.contains("torus"));
    }
}
