//! A minimal, dependency-free JSON value: deterministic writer plus a
//! strict parser.
//!
//! The workspace builds hermetically (no registry access), so the report
//! pipeline carries its own JSON layer instead of serde. The writer is
//! byte-deterministic — object keys keep insertion order, floats render
//! through Rust's shortest-roundtrip `Display` — which is what lets the
//! golden-report tests pin campaign output bit for bit. The parser accepts
//! exactly the JSON this crate (and the bench emitters) produce, plus
//! ordinary interchange JSON; it exists for report validation
//! (`campaign --check`) and the CI perf-bar checker.

use std::fmt;

/// A JSON value. Objects preserve insertion order (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; never rendered with an exponent).
    Int(i64),
    /// A finite double. NaN/∞ are rejected at write time.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer (floats with zero fraction coerce).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            #[allow(clippy::cast_possible_truncation)]
            Json::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a double (integers coerce).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical on-disk form of every report in the workspace.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line (`{"a": 1, "b": [2, 3]}`) — the JSONL
    /// form used by the checkpoint journal and the campaign daemon,
    /// where one value per line is the framing. Same separators as
    /// [`to_pretty`](Json::to_pretty) (`": "` after keys, `", "`
    /// between items) so textual greps behave identically on both
    /// forms; parseable by [`Json::parse`].
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                assert!(v.is_finite(), "non-finite float in JSON output");
                // Shortest-roundtrip Display; force a fraction marker so
                // the value parses back as a float.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing content after the JSON value"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // workspace's ASCII-only reports.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_deterministic_and_ordered() {
        let v = Json::obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("x", Json::Float(0.05)),
        ]);
        let s = v.to_pretty();
        assert_eq!(s, v.to_pretty());
        // Keys keep insertion order, not sorted order.
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("0.05"));
    }

    #[test]
    fn floats_always_carry_a_fraction_marker() {
        assert!(Json::Float(2.0).to_pretty().contains("2.0"));
        assert!(Json::Float(0.5).to_pretty().contains("0.5"));
    }

    #[test]
    fn compact_form_is_one_line_and_round_trips() {
        let v = Json::obj(vec![
            ("index", Json::Int(3)),
            (
                "cell",
                Json::obj(vec![
                    ("id", Json::Str("cycle/n8".into())),
                    ("eps", Json::Float(0.05)),
                    ("tags", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
                ]),
            ),
        ]);
        let s = v.to_compact();
        assert!(!s.contains('\n'), "{s}");
        assert_eq!(
            s,
            r#"{"index": 3, "cell": {"id": "cycle/n8", "eps": 0.05, "tags": [1, 2]}}"#
        );
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(Json::Arr(vec![]).to_compact(), "[]");
        assert_eq!(Json::Obj(vec![]).to_compact(), "{}");
    }

    #[test]
    fn round_trips_through_the_parser() {
        let v = Json::obj(vec![
            ("schema", Json::Str("beep-campaign-report".into())),
            ("version", Json::Int(1)),
            ("eps", Json::Float(0.05)),
            ("neg", Json::Int(-3)),
            (
                "cells",
                Json::Arr(vec![Json::obj(vec![
                    ("id", Json::Str("cycle/n8".into())),
                    ("ok", Json::Bool(true)),
                ])]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("quote", Json::Str("a \"b\" \n c".into())),
        ]);
        let parsed = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parses_interchange_json() {
        let v = Json::parse(r#" {"a": [1, 2.5, -3e2, "A"], "b": null} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[3].as_str(),
            Some("A")
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "01x", "\"abc", "{}{}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn accessors_coerce_sensibly() {
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
        assert_eq!(Json::Float(7.0).as_i64(), Some(7));
        assert_eq!(Json::Float(7.5).as_i64(), None);
        assert_eq!(Json::Str("x".into()).as_i64(), None);
    }
}
