#![warn(missing_docs)]

//! Declarative scenario campaigns for the noisy-beeps workspace.
//!
//! A **campaign** sweeps `topology families × sizes × channel models ×
//! fault plans × protocols × seeds` as one declarative spec
//! ([`CampaignSpec`], parsed from a checked-in file or built in code),
//! expands it into a cell matrix, executes every cell on the sharded
//! bitset engine (in parallel across worker threads), and emits both a
//! human table and a stable, schema-versioned JSON report
//! ([`CampaignReport`]) suitable for perf-trajectory tracking in CI. The
//! channel axis covers the paper's iid `ε` sweep plus the richer
//! [`ChannelSpec`] families (bursty Gilbert–Elliott, per-node rates,
//! adversarial erasure); the fault axis ([`FaultSpec`], `[[faults]]`
//! tables) sweeps deterministic crash/spam/mute plans over a fraction of
//! each cell's nodes, with fault-intolerant protocols recorded as
//! skipped cells.
//!
//! The scenario layer is the workspace's front door for new workloads:
//! instead of writing a bespoke experiment module per sweep, describe
//! the grid and let [`run_campaign`] drive the
//! [`beep_apps::Protocol`] registry.
//!
//! # Determinism
//!
//! With timing excluded ([`CampaignReport::to_json`] with
//! `include_timing = false`), a report is a byte-for-byte pure function
//! of its spec: cell seeds derive from cell *ids* (not positions), the
//! topology instance is shared across the (ε, protocol) cells of one
//! family × size × sweep-seed, fault plans realize from cell seeds, and
//! results land in matrix order at every thread count. `wall_ms` fields
//! are the only nondeterministic output. Fault-free cell ids carry no
//! fault segment, so adding `[[faults]]` tables to an existing spec
//! leaves every pre-existing cell's id — and seed — untouched.
//!
//! # Executor, sinks, checkpoints
//!
//! [`run_campaign`] is a thin wrapper over the engine-agnostic executor
//! ([`run_campaign_with_sink`]): completed cells stream into a pluggable
//! [`ResultSink`], of which the in-memory report assembly
//! ([`MemorySink`]) is one implementation and the incremental JSONL
//! checkpoint journal ([`CheckpointSink`]) another.
//! [`run_campaign_resumable`] replays a journal's completed cells,
//! executes only the remainder, and — because cell seeds are pure
//! functions of cell ids — produces a final timing-free report
//! byte-identical to an uninterrupted run.
//!
//! # Example
//!
//! ```
//! use beep_scenarios::{run_campaign, CampaignSpec, RunOptions};
//!
//! let spec = CampaignSpec::parse(r#"
//!     name = "doc"
//!     protocols = ["wave"]
//!     [[topology]]
//!     family = "cycle"
//!     sizes = [6]
//! "#).unwrap();
//! let report = run_campaign(&spec, &RunOptions::default()).unwrap();
//! assert_eq!(report.cells.len(), 1);
//! assert!(report.cells[0].success);
//! ```

pub mod checkpoint;
pub mod json;
pub mod sink;

mod error;
mod report;
mod run;
mod spec;

pub use checkpoint::{
    load_checkpoint, spec_fingerprint, Checkpoint, CheckpointSink, CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
};
pub use error::ScenarioError;
pub use report::{
    validate_report, CampaignReport, CellResult, CellStatus, Summary, SCHEMA_NAME, SCHEMA_VERSION,
};
pub use run::{
    run_campaign, run_campaign_resumable, run_campaign_with_sink, InstanceCache, ResumeOutcome,
    RunOptions,
};
pub use sink::{FnSink, MemorySink, ResultSink, TeeSink};
pub use spec::{
    cell_seed, CampaignSpec, CellSpec, ChannelSpec, FaultSpec, PolicySpec, TopologyFamily,
    TopologySpec,
};
