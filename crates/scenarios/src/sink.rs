//! Pluggable result sinks: where completed cells go.
//!
//! The executor ([`run_campaign_with_sink`]) is engine-agnostic about
//! what happens to a finished [`CellResult`]: it calls
//! [`ResultSink::record`] exactly once per completed cell (under a lock,
//! so implementations need no internal synchronization) and leaves the
//! rest to the sink. The classic in-memory report assembly is one sink
//! ([`MemorySink`]); the incremental JSONL checkpoint journal is another
//! ([`CheckpointSink`](crate::checkpoint::CheckpointSink)); sinks
//! compose with [`TeeSink`] and adapt from closures with [`FnSink`]
//! (e.g. the campaign daemon's per-cell progress counter).
//!
//! # Ordering
//!
//! `record` is called in *completion* order, which varies with the
//! worker-thread count. Sinks that care about matrix order must key on
//! the `index` argument (the cell's position in the expanded matrix),
//! exactly as [`MemorySink`] does — that indexing is what keeps the
//! final report byte-identical at every thread count.
//!
//! [`run_campaign_with_sink`]: crate::run_campaign_with_sink

use crate::error::ScenarioError;
use crate::report::{CampaignReport, CellResult};

/// A consumer of completed campaign cells.
///
/// `Send` because the executor invokes sinks from its worker scope; the
/// executor serializes calls, so `&mut self` is never aliased.
pub trait ResultSink: Send {
    /// Consumes one completed cell. `index` is the cell's position in
    /// the expanded matrix (not the completion order).
    ///
    /// # Errors
    ///
    /// A sink error (e.g. a failed journal write) aborts the campaign:
    /// the executor stops dispatching cells and surfaces the error.
    fn record(&mut self, index: usize, result: &CellResult) -> Result<(), ScenarioError>;
}

impl<S: ResultSink + ?Sized> ResultSink for &mut S {
    fn record(&mut self, index: usize, result: &CellResult) -> Result<(), ScenarioError> {
        (**self).record(index, result)
    }
}

/// The in-memory sink: collects cells into their matrix slots and
/// assembles the classic [`CampaignReport`]. This is what
/// [`run_campaign`](crate::run_campaign) plugs into the executor.
#[derive(Debug)]
pub struct MemorySink {
    campaign: String,
    cells: Vec<Option<CellResult>>,
}

impl MemorySink {
    /// An empty sink for a campaign of `total` cells.
    #[must_use]
    pub fn new(campaign: String, total: usize) -> MemorySink {
        MemorySink {
            campaign,
            cells: vec![None; total],
        }
    }

    /// How many slots are filled.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Assembles the report, or `None` while any cell is still missing
    /// (an interrupted / `max_cells`-cut run).
    #[must_use]
    pub fn try_into_report(self, wall_ms: f64) -> Option<CampaignReport> {
        let cells: Option<Vec<CellResult>> = self.cells.into_iter().collect();
        Some(CampaignReport {
            campaign: self.campaign,
            cells: cells?,
            wall_ms,
        })
    }
}

impl ResultSink for MemorySink {
    fn record(&mut self, index: usize, result: &CellResult) -> Result<(), ScenarioError> {
        let slot = self
            .cells
            .get_mut(index)
            .ok_or_else(|| ScenarioError::Report {
                detail: format!("cell index {index} outside the matrix"),
            })?;
        *slot = Some(result.clone());
        Ok(())
    }
}

/// Fans each cell out to two sinks, first `0` then `1` — e.g. the
/// in-memory report plus the on-disk checkpoint journal.
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: ResultSink, B: ResultSink> ResultSink for TeeSink<A, B> {
    fn record(&mut self, index: usize, result: &CellResult) -> Result<(), ScenarioError> {
        self.0.record(index, result)?;
        self.1.record(index, result)
    }
}

/// Adapts a closure into a sink — progress counters, log lines, tests.
pub struct FnSink<F>(pub F);

impl<F> ResultSink for FnSink<F>
where
    F: FnMut(usize, &CellResult) -> Result<(), ScenarioError> + Send,
{
    fn record(&mut self, index: usize, result: &CellResult) -> Result<(), ScenarioError> {
        (self.0)(index, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellStatus;

    fn cell(id: &str) -> CellResult {
        CellResult {
            id: id.into(),
            family: "cycle".into(),
            requested_n: 4,
            n: 4,
            edges: 4,
            max_degree: 2,
            topology_params: vec![],
            epsilon: 0.0,
            channel: "eps0".into(),
            faults: "none".into(),
            protocol: "wave".into(),
            seed: 1,
            cell_seed: 7,
            status: CellStatus::Ok,
            success: true,
            rounds: 3,
            beeps: 9,
            metrics: vec![],
            detail: String::new(),
            wall_ms: 0.5,
        }
    }

    #[test]
    fn memory_sink_fills_slots_in_matrix_order() {
        let mut sink = MemorySink::new("m".into(), 2);
        assert_eq!(sink.completed(), 0);
        // Completion order 1 then 0: the report still lands in matrix
        // order because slots key on the index.
        sink.record(1, &cell("b")).unwrap();
        sink.record(0, &cell("a")).unwrap();
        let report = sink.try_into_report(1.0).unwrap();
        assert_eq!(report.cells[0].id, "a");
        assert_eq!(report.cells[1].id, "b");
    }

    #[test]
    fn incomplete_memory_sink_yields_no_report() {
        let mut sink = MemorySink::new("m".into(), 3);
        sink.record(0, &cell("a")).unwrap();
        assert_eq!(sink.completed(), 1);
        assert!(sink.try_into_report(0.0).is_none());
    }

    #[test]
    fn memory_sink_rejects_out_of_range_indices() {
        let mut sink = MemorySink::new("m".into(), 1);
        assert!(sink.record(5, &cell("x")).is_err());
    }

    #[test]
    fn tee_and_fn_sinks_compose() {
        let mut seen = Vec::new();
        {
            let mut memory = MemorySink::new("m".into(), 1);
            let mut tee = TeeSink(
                &mut memory,
                FnSink(|i, c: &CellResult| {
                    seen.push((i, c.id.clone()));
                    Ok(())
                }),
            );
            tee.record(0, &cell("a")).unwrap();
        }
        assert_eq!(seen, vec![(0, "a".to_string())]);
    }

    #[test]
    fn tee_propagates_the_first_error() {
        let mut fails = FnSink(|_, _: &CellResult| {
            Err(ScenarioError::Report {
                detail: "sink broke".into(),
            })
        });
        let mut memory = MemorySink::new("m".into(), 1);
        let mut tee = TeeSink(&mut fails, &mut memory);
        assert!(tee.record(0, &cell("a")).is_err());
        // The failing first leg short-circuits the second.
        assert_eq!(memory.completed(), 0);
    }
}
