//! The incremental checkpoint journal: resumable campaigns on disk.
//!
//! A checkpoint is a JSONL file. Line 1 is the header:
//!
//! ```json
//! {"schema": "beep-campaign-checkpoint", "version": 1,
//!  "campaign": "smoke", "fingerprint": "0x8d4e…", "cells": 12}
//! ```
//!
//! and every following line is one completed cell, written (and flushed)
//! the moment it finishes:
//!
//! ```json
//! {"index": 3, "cell": { …the report's cells-array element, with wall_ms… }}
//! ```
//!
//! `index` is the cell's position in the expanded matrix; line order is
//! completion order and varies with the worker-thread count, which is
//! why replay keys on the index, never the line number.
//!
//! # The resume contract
//!
//! The `fingerprint` pins the *expanded matrix*: an FNV-1a hash over the
//! campaign name and every cell id in matrix order (cell ids already
//! encode the topology family with its parameters, the realized channel
//! and fault labels, the protocol, and the sweep seed — the complete
//! identity of a run). Because cell seeds are themselves pure functions
//! of cell ids, a journal whose fingerprint matches can be replayed
//! verbatim and the remaining cells executed fresh, and the merged
//! report is byte-identical (timing excluded) to an uninterrupted run —
//! the property `crates/scenarios/tests/checkpoint_resume.rs` pins.
//! A fingerprint mismatch (the spec changed underneath the journal) is
//! rejected as [`ScenarioError::Checkpoint`] instead of silently mixing
//! two different campaigns.
//!
//! # Crash tolerance
//!
//! Records are appended line-at-a-time with an explicit flush, so a
//! killed campaign loses at most the cell in flight. A torn final line
//! (the kill landed mid-write) is detected and dropped on load; a
//! corrupt line anywhere *else* is an error — that journal was not
//! produced by this writer.

use crate::error::ScenarioError;
use crate::json::Json;
use crate::report::CellResult;
use crate::sink::ResultSink;
use crate::spec::{cell_seed, CampaignSpec, CellSpec};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Schema identifier on the journal's header line.
pub const CHECKPOINT_SCHEMA: &str = "beep-campaign-checkpoint";
/// Journal format version.
pub const CHECKPOINT_VERSION: i64 = 1;

/// The spec fingerprint: FNV-1a over the campaign name and the expanded
/// cell ids in matrix order. Reuses the cell-seed hash so the checkpoint
/// layer adds no second hashing contract to the workspace.
#[must_use]
pub fn spec_fingerprint(spec: &CampaignSpec, cells: &[CellSpec]) -> u64 {
    let mut canon = String::with_capacity(64 * (cells.len() + 1));
    canon.push_str(&spec.name);
    for cell in cells {
        canon.push('\n');
        canon.push_str(&cell.id);
    }
    cell_seed(&canon)
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> ScenarioError {
    ScenarioError::Checkpoint {
        detail: format!("{}: {what}: {e}", path.display()),
    }
}

/// A sink that streams each completed cell to the journal as one JSONL
/// record, flushed immediately (the crash-tolerance contract).
pub struct CheckpointSink {
    writer: BufWriter<File>,
    path: std::path::PathBuf,
}

impl CheckpointSink {
    /// Creates (truncating) a fresh journal for `spec` and writes the
    /// header line.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Checkpoint`] on any I/O failure.
    pub fn create(
        path: &Path,
        spec: &CampaignSpec,
        cells: &[CellSpec],
    ) -> Result<CheckpointSink, ScenarioError> {
        let file = File::create(path).map_err(|e| io_err(path, "create", &e))?;
        let mut sink = CheckpointSink {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
        };
        let header = Json::obj(vec![
            ("schema", Json::Str(CHECKPOINT_SCHEMA.into())),
            ("version", Json::Int(CHECKPOINT_VERSION)),
            ("campaign", Json::Str(spec.name.clone())),
            (
                "fingerprint",
                Json::Str(format!("{:#018x}", spec_fingerprint(spec, cells))),
            ),
            (
                "cells",
                Json::Int(i64::try_from(cells.len()).expect("cell count fits")),
            ),
        ]);
        sink.write_line(&header)?;
        Ok(sink)
    }

    /// Reopens an existing journal for appending (after
    /// [`load_checkpoint`] verified its header).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Checkpoint`] on any I/O failure.
    pub fn append(path: &Path) -> Result<CheckpointSink, ScenarioError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open for append", &e))?;
        Ok(CheckpointSink {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    fn write_line(&mut self, value: &Json) -> Result<(), ScenarioError> {
        let mut line = value.to_compact();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_err(&self.path, "write", &e))
    }
}

impl ResultSink for CheckpointSink {
    fn record(&mut self, index: usize, result: &CellResult) -> Result<(), ScenarioError> {
        self.write_line(&Json::obj(vec![
            (
                "index",
                Json::Int(i64::try_from(index).expect("index fits")),
            ),
            ("cell", result.to_json(true)),
        ]))
    }
}

/// A loaded journal: the completed cells, keyed by matrix index.
#[derive(Debug)]
pub struct Checkpoint {
    /// `(matrix index, replayed result)` pairs, deduplicated, in journal
    /// order.
    pub completed: Vec<(usize, CellResult)>,
}

/// Loads and verifies a journal against the campaign about to run.
///
/// Returns `Ok(None)` when `path` does not exist or is empty — a fresh
/// start, not an error. A torn final line is dropped (see the module
/// docs); duplicate indices keep the later record (they are identical by
/// construction — cell runs are deterministic).
///
/// # Errors
///
/// [`ScenarioError::Checkpoint`] on I/O failure, a malformed header or
/// non-final record, a schema/version mismatch, a fingerprint mismatch
/// against `spec`/`cells`, or a record whose cell id disagrees with the
/// matrix at its index.
pub fn load_checkpoint(
    path: &Path,
    spec: &CampaignSpec,
    cells: &[CellSpec],
) -> Result<Option<Checkpoint>, ScenarioError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, "read", &e)),
    };
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .peekable();
    let Some((_, header_line)) = lines.next() else {
        return Ok(None);
    };
    let bad = |detail: String| ScenarioError::Checkpoint {
        detail: format!("{}: {detail}", path.display()),
    };
    let header = Json::parse(header_line).map_err(|e| bad(format!("malformed header: {e}")))?;
    match header.get("schema").and_then(Json::as_str) {
        Some(s) if s == CHECKPOINT_SCHEMA => {}
        other => {
            return Err(bad(format!(
                "schema {other:?}, expected {CHECKPOINT_SCHEMA:?}"
            )))
        }
    }
    match header.get("version").and_then(Json::as_i64) {
        Some(v) if v == CHECKPOINT_VERSION => {}
        other => {
            return Err(bad(format!(
                "journal version {other:?}, expected {CHECKPOINT_VERSION}"
            )))
        }
    }
    let expected = format!("{:#018x}", spec_fingerprint(spec, cells));
    match header.get("fingerprint").and_then(Json::as_str) {
        Some(fp) if fp == expected => {}
        other => {
            return Err(bad(format!(
                "spec fingerprint mismatch: journal has {other:?}, this spec expands to \
                 {expected} — the checkpoint belongs to a different campaign"
            )))
        }
    }
    match header.get("cells").and_then(Json::as_i64) {
        Some(n) if n == i64::try_from(cells.len()).expect("fits") => {}
        other => {
            return Err(bad(format!(
                "journal expects {other:?} cells, this spec expands to {}",
                cells.len()
            )))
        }
    }

    let mut slots: Vec<Option<CellResult>> = vec![None; cells.len()];
    while let Some((line_no, line)) = lines.next() {
        let is_last = lines.peek().is_none();
        let parse = || -> Result<(usize, CellResult), ScenarioError> {
            let record =
                Json::parse(line).map_err(|e| bad(format!("line {}: {e}", line_no + 1)))?;
            let index = record
                .get("index")
                .and_then(Json::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| bad(format!("line {}: missing index", line_no + 1)))?;
            let cell = record
                .get("cell")
                .ok_or_else(|| bad(format!("line {}: missing cell", line_no + 1)))
                .and_then(CellResult::from_json)?;
            Ok((index, cell))
        };
        match parse() {
            Ok((index, cell)) => {
                let spec_cell = cells.get(index).ok_or_else(|| {
                    bad(format!(
                        "line {}: index {index} outside the matrix",
                        line_no + 1
                    ))
                })?;
                if cell.id != spec_cell.id {
                    return Err(bad(format!(
                        "line {}: cell id {:?} disagrees with the matrix ({:?} at index \
                         {index}) despite a matching fingerprint — corrupt journal",
                        line_no + 1,
                        cell.id,
                        spec_cell.id
                    )));
                }
                slots[index] = Some(cell);
            }
            // A torn final line is the expected kill-mid-write shape.
            Err(_) if is_last => break,
            Err(e) => return Err(e),
        }
    }
    let completed: Vec<(usize, CellResult)> = slots
        .into_iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|c| (i, c)))
        .collect();
    Ok(Some(Checkpoint { completed }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn spec() -> CampaignSpec {
        CampaignSpec::parse(
            "name = \"ck\"\nprotocols = [\"wave\", \"round_sim\"]\n\
             [[topology]]\nfamily = \"cycle\"\nsizes = [6]\n",
        )
        .unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("beep-ckpt-unit-{}-{name}", std::process::id()))
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec_a = spec();
        let cells = spec_a.expand().unwrap();
        assert_eq!(
            spec_fingerprint(&spec_a, &cells),
            spec_fingerprint(&spec_a, &cells)
        );
        let mut spec_b = spec_a.clone();
        spec_b.epsilons = vec![0.1];
        let cells_b = spec_b.expand().unwrap();
        assert_ne!(
            spec_fingerprint(&spec_a, &cells),
            spec_fingerprint(&spec_b, &cells_b)
        );
        // The name participates too (two same-grid campaigns are still
        // different reports).
        let mut spec_c = spec_a.clone();
        spec_c.name = "other".into();
        assert_ne!(
            spec_fingerprint(&spec_a, &cells),
            spec_fingerprint(&spec_c, &cells)
        );
    }

    #[test]
    fn missing_journal_loads_as_fresh_start() {
        let spec = spec();
        let cells = spec.expand().unwrap();
        let path = tmp("missing.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(load_checkpoint(&path, &spec, &cells).unwrap().is_none());
    }

    #[test]
    fn header_only_journal_replays_zero_cells() {
        let spec = spec();
        let cells = spec.expand().unwrap();
        let path = tmp("header-only.jsonl");
        drop(CheckpointSink::create(&path, &spec, &cells).unwrap());
        let loaded = load_checkpoint(&path, &spec, &cells).unwrap().unwrap();
        assert!(loaded.completed.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let spec_a = spec();
        let cells = spec_a.expand().unwrap();
        let path = tmp("mismatch.jsonl");
        drop(CheckpointSink::create(&path, &spec_a, &cells).unwrap());
        let mut spec_b = spec_a.clone();
        spec_b.epsilons = vec![0.2];
        let cells_b = spec_b.expand().unwrap();
        let err = load_checkpoint(&path, &spec_b, &cells_b).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_line_is_an_error_torn_final_line_is_not() {
        let spec = spec();
        let cells = spec.expand().unwrap();
        let path = tmp("torn.jsonl");
        drop(CheckpointSink::create(&path, &spec, &cells).unwrap());
        let header = std::fs::read_to_string(&path).unwrap();
        // Torn final line: tolerated, replays zero cells.
        std::fs::write(&path, format!("{header}{{\"index\": 0, \"ce")).unwrap();
        let loaded = load_checkpoint(&path, &spec, &cells).unwrap().unwrap();
        assert!(loaded.completed.is_empty());
        // The same garbage *before* a valid-looking line: hard error.
        std::fs::write(
            &path,
            format!("{header}{{\"index\": 0, \"ce\n{{\"index\": 1}}"),
        )
        .unwrap();
        assert!(load_checkpoint(&path, &spec, &cells).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
