//! Campaign specs: what to sweep, and the expansion into a cell matrix.
//!
//! A campaign is the cartesian product
//! `topology instances × channels × protocols × seeds`. The channel axis
//! is the `epsilons` list (each an iid-Bernoulli shorthand) plus any
//! `[[channel]]` tables ([`ChannelSpec`]) naming richer models — bursty
//! Gilbert–Elliott, heterogeneous per-node rates, budgeted adversarial
//! erasure. Specs are built programmatically ([`CampaignSpec`] is plain
//! data) or parsed from a checked-in file ([`CampaignSpec::parse`]) in a
//! small TOML subset:
//!
//! ```toml
//! name = "smoke"
//! seeds = [1, 2]
//! epsilons = [0.0, 0.05]
//! protocols = ["matching", "round_sim"]
//!
//! [[topology]]
//! family = "cycle"
//! sizes = [8, 16]
//!
//! [[topology]]
//! family = "random_regular"
//! sizes = [12]
//! degree = 4
//!
//! [[channel]]
//! model = "ge"              # Gilbert–Elliott bursty channel
//! eps_good = 0.01
//! eps_bad = 0.2
//! p_good_to_bad = 0.1
//! p_bad_to_good = 0.5
//! ```
//!
//! A `[[faults]]` table adds a fault-axis entry ([`FaultSpec`]): a node
//! misbehavior kind applied to a swept fraction of each cell's nodes,
//! realized per cell from the engine's reserved fault stream, and/or an
//! *adaptive* policy ([`PolicySpec`]) whose per-round choices react to
//! the observed transcript (budget swept as a fraction of `n`):
//!
//! ```toml
//! [[faults]]
//! kind = "crash"             # or "spam" / "mute"
//! fraction = 0.25
//! round = 8                  # crash-only: first dead round
//!
//! [[faults]]
//! policy = "target_loudest"  # or "rushing_spam"
//! budget_frac = 0.25         # per-round budget = ⌊budget_frac · n⌋
//!
//! [[faults]]
//! kind = "mute"              # static faults compose with a policy
//! fraction = 0.125
//! policy = "rushing_spam"
//! budget_frac = 0.125
//! window = 2                 # rushing-only: rounds of post-activity spam
//! ```
//!
//! The fault axis always starts with the implicit fault-free entry, so
//! adding `[[faults]]` tables never perturbs existing cell ids or seeds.
//!
//! Supported syntax: `key = value` pairs (strings, numbers, booleans,
//! flat arrays), `[[topology]]`/`[[channel]]`/`[[faults]]` table arrays,
//! and `#` comments. Nothing else of TOML is needed or accepted.

use crate::error::ScenarioError;
use crate::json::Json;
use beep_apps::Protocol;
use beep_net::{topology, AdaptivePolicy, ChannelModel, FaultKind, FaultPlan, Graph, Noise};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A topology family with its (resolved) generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TopologyFamily {
    /// `C_n`.
    Cycle,
    /// `P_n`.
    Path,
    /// `K_n`.
    Complete,
    /// `K_{1,n−1}`.
    Star,
    /// Near-square 4-neighbor grid on ≥ n nodes.
    Grid,
    /// Near-square wraparound grid (4-regular) on ≈ n nodes.
    Torus,
    /// Complete binary tree.
    BinaryTree,
    /// Uniform random labeled tree.
    RandomTree,
    /// Random geometric graph; `None` radius = the connectivity-threshold
    /// radius `√(2·ln n / (π·n))`, resolved per size.
    RandomGeometric {
        /// Connection radius in the unit square, or `None` for auto.
        radius: Option<f64>,
    },
    /// Random `d`-regular graph.
    RandomRegular {
        /// The degree `d` (= the paper's Δ, exactly).
        degree: usize,
    },
    /// Erdős–Rényi `G(n, p)` with `p = expected_degree / (n−1)`.
    Gnp {
        /// Target expected degree.
        expected_degree: f64,
    },
    /// Barabási–Albert preferential attachment.
    PreferentialAttachment {
        /// Edges per arriving node.
        m: usize,
    },
    /// `K_{⌊n/2⌋,⌈n/2⌉}` — the Lemma 14 hard-instance shape.
    CompleteBipartite,
}

impl TopologyFamily {
    /// The canonical label, including parameters — used in cell ids, so
    /// two parameterizations of one family never collide.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TopologyFamily::Cycle => "cycle".into(),
            TopologyFamily::Path => "path".into(),
            TopologyFamily::Complete => "complete".into(),
            TopologyFamily::Star => "star".into(),
            TopologyFamily::Grid => "grid".into(),
            TopologyFamily::Torus => "torus".into(),
            TopologyFamily::BinaryTree => "binary_tree".into(),
            TopologyFamily::RandomTree => "random_tree".into(),
            TopologyFamily::RandomGeometric { radius: None } => "rgg(r=auto)".into(),
            TopologyFamily::RandomGeometric { radius: Some(r) } => format!("rgg(r={r})"),
            TopologyFamily::RandomRegular { degree } => format!("random_regular(d={degree})"),
            TopologyFamily::Gnp { expected_degree } => format!("gnp(deg={expected_degree})"),
            TopologyFamily::PreferentialAttachment { m } => format!("pa(m={m})"),
            TopologyFamily::CompleteBipartite => "complete_bipartite".into(),
        }
    }

    /// Builds the family's instance closest to `n` nodes, deterministic in
    /// `seed`. Returns the graph and the resolved generation parameters
    /// (e.g. the auto radius) for the report.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] when the family cannot realize `n` (torus
    /// below 9 nodes, odd `n·d`, …) — campaigns mark such cells skipped.
    #[allow(clippy::cast_precision_loss)]
    pub fn build(&self, n: usize, seed: u64) -> Result<(Graph, Vec<(String, f64)>), ScenarioError> {
        let bad = |detail: String| ScenarioError::Spec { line: 0, detail };
        let graph_err = |e: beep_net::GraphError| bad(format!("{}: {e}", self.label()));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params: Vec<(String, f64)> = Vec::new();
        let graph = match self {
            TopologyFamily::Cycle => topology::cycle(n).map_err(graph_err)?,
            TopologyFamily::Path => topology::path(n).map_err(graph_err)?,
            TopologyFamily::Complete => topology::complete(n).map_err(graph_err)?,
            TopologyFamily::Star => topology::star(n).map_err(graph_err)?,
            TopologyFamily::Grid => {
                let rows = n.isqrt().max(1);
                let cols = n.div_ceil(rows);
                topology::grid(rows, cols).map_err(graph_err)?
            }
            TopologyFamily::Torus => {
                if n < 9 {
                    return Err(bad(format!("torus needs n ≥ 9, got {n}")));
                }
                let rows = n.isqrt().max(3);
                let cols = (n / rows).max(3);
                topology::torus(rows, cols).map_err(graph_err)?
            }
            TopologyFamily::BinaryTree => topology::binary_tree(n).map_err(graph_err)?,
            TopologyFamily::RandomTree => topology::random_tree(n, &mut rng).map_err(graph_err)?,
            TopologyFamily::RandomGeometric { radius } => {
                let r = radius.unwrap_or_else(|| {
                    let nf = n.max(2) as f64;
                    (2.0 * nf.ln() / (std::f64::consts::PI * nf)).sqrt()
                });
                params.push(("radius".into(), r));
                let (g, _) = topology::random_geometric(n, r, &mut rng).map_err(graph_err)?;
                g
            }
            TopologyFamily::RandomRegular { degree } => {
                params.push(("degree".into(), *degree as f64));
                topology::random_regular(n, *degree, &mut rng).map_err(graph_err)?
            }
            TopologyFamily::Gnp { expected_degree } => {
                if n < 2 {
                    return Err(bad(format!("gnp needs n ≥ 2, got {n}")));
                }
                let p = (expected_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
                params.push(("p".into(), p));
                topology::gnp(n, p, &mut rng).map_err(graph_err)?
            }
            TopologyFamily::PreferentialAttachment { m } => {
                params.push(("m".into(), *m as f64));
                topology::preferential_attachment(n, *m, &mut rng).map_err(graph_err)?
            }
            TopologyFamily::CompleteBipartite => {
                topology::complete_bipartite(n / 2, n - n / 2).map_err(graph_err)?
            }
        };
        Ok((graph, params))
    }

    /// Parses a family from its bare spec name with default parameters
    /// (degree 4 regular, expected degree 4 G(n,p), m = 2 attachment,
    /// auto RGG radius) — the CLI entry point; spec files can override
    /// the parameters per `[[topology]]` table.
    #[must_use]
    pub fn from_name(name: &str) -> Option<TopologyFamily> {
        TopologyFamily::from_spec(name, &Json::Obj(vec![]), 0).ok()
    }

    /// Parses a family from its spec name plus the table's parameters.
    fn from_spec(name: &str, table: &Json, line: usize) -> Result<TopologyFamily, ScenarioError> {
        let f64_param = |key: &str| table.get(key).and_then(Json::as_f64);
        let usize_param = |key: &str| -> Result<Option<usize>, ScenarioError> {
            match table.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_i64()
                    .filter(|&x| x >= 0)
                    .map(|x| Some(usize::try_from(x).expect("non-negative")))
                    .ok_or(ScenarioError::Spec {
                        line,
                        detail: format!("{key} must be a non-negative integer"),
                    }),
            }
        };
        Ok(match name {
            "cycle" => TopologyFamily::Cycle,
            "path" => TopologyFamily::Path,
            "complete" => TopologyFamily::Complete,
            "star" => TopologyFamily::Star,
            "grid" => TopologyFamily::Grid,
            "torus" => TopologyFamily::Torus,
            "binary_tree" => TopologyFamily::BinaryTree,
            "random_tree" | "tree" => TopologyFamily::RandomTree,
            "random_geometric" | "rgg" => TopologyFamily::RandomGeometric {
                radius: f64_param("radius"),
            },
            "random_regular" | "regular" => TopologyFamily::RandomRegular {
                degree: usize_param("degree")?.unwrap_or(4),
            },
            "gnp" => TopologyFamily::Gnp {
                expected_degree: f64_param("expected_degree").unwrap_or(4.0),
            },
            "preferential_attachment" | "pa" => TopologyFamily::PreferentialAttachment {
                m: usize_param("m")?.unwrap_or(2),
            },
            "complete_bipartite" | "bipartite" => TopologyFamily::CompleteBipartite,
            other => {
                return Err(ScenarioError::Spec {
                    line,
                    detail: format!("unknown topology family {other:?}"),
                })
            }
        })
    }
}

/// One axis entry: a family swept over sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// The family (with parameters).
    pub family: TopologyFamily,
    /// Target node counts to sweep.
    pub sizes: Vec<usize>,
}

/// One channel-axis entry: a noise-model family with resolved parameters.
///
/// The campaign channel axis is the `epsilons` list (each one an
/// [`ChannelSpec::Iid`] shorthand, kept so version-1 specs and their cell
/// ids are byte-identical) followed by the spec's `[[channel]]` tables in
/// order. Parameters are range-checked at parse time; [`build`] turns an
/// entry into a concrete [`ChannelModel`] for a realized graph.
///
/// [`build`]: ChannelSpec::build
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChannelSpec {
    /// The paper's iid `Bernoulli(ε)` channel (`ε = 0` = noiseless).
    Iid {
        /// Flip rate `ε ∈ [0, ½)`.
        epsilon: f64,
    },
    /// Two-state bursty Gilbert–Elliott channel: a Good/Bad Markov chain
    /// evolved once per round, flipping at the active state's rate.
    GilbertElliott {
        /// Flip rate while in the Good state.
        eps_good: f64,
        /// Flip rate while in the Bad state.
        eps_bad: f64,
        /// Per-round transition probability Good → Bad.
        p_good_to_bad: f64,
        /// Per-round transition probability Bad → Good.
        p_bad_to_good: f64,
    },
    /// Heterogeneous per-node rates: node `v` receives at rate
    /// `pattern[v mod pattern.len()]`.
    PerNode {
        /// Non-empty rate pattern, each entry in `[0, ½)`.
        pattern: Vec<f64>,
    },
    /// Budgeted adversarial erasure: each round an adversary silences up
    /// to `⌈budget_frac · n⌉` heard beeps, highest-degree listeners first.
    Adversarial {
        /// Per-round erasure budget as a fraction of the realized node
        /// count, in `[0, 1]`.
        budget_frac: f64,
        /// The iid-equivalent rate the simulation calibrates against.
        design_epsilon: f64,
    },
}

impl ChannelSpec {
    /// The canonical label, used in cell ids. Iid entries label as
    /// `eps{ε}` — exactly the version-1 id segment — so adding the
    /// channel axis never perturbed existing cell ids or their derived
    /// seeds.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ChannelSpec::Iid { epsilon } => format!("eps{epsilon}"),
            ChannelSpec::GilbertElliott {
                eps_good,
                eps_bad,
                p_good_to_bad,
                p_bad_to_good,
            } => format!("ge-g{eps_good}-b{eps_bad}-pgb{p_good_to_bad}-pbg{p_bad_to_good}"),
            ChannelSpec::PerNode { pattern } => {
                let rates: Vec<String> = pattern.iter().map(ToString::to_string).collect();
                format!("pernode-{}", rates.join("-"))
            }
            ChannelSpec::Adversarial {
                budget_frac,
                design_epsilon,
            } => format!("adv-f{budget_frac}-e{design_epsilon}"),
        }
    }

    /// The worst-case iid-equivalent rate — what the simulation layer
    /// calibrates its expansion parameters against, and the `epsilon`
    /// recorded in the cell's report row.
    #[must_use]
    pub fn calibration_epsilon(&self) -> f64 {
        match self {
            ChannelSpec::Iid { epsilon } => *epsilon,
            ChannelSpec::GilbertElliott {
                eps_good, eps_bad, ..
            } => eps_good.max(*eps_bad),
            ChannelSpec::PerNode { pattern } => pattern.iter().copied().fold(0.0, f64::max),
            ChannelSpec::Adversarial { design_epsilon, .. } => *design_epsilon,
        }
    }

    /// Instantiates the concrete [`ChannelModel`] for a realized graph of
    /// `n` nodes (the adversary's budget scales with `n`; the other
    /// models ignore it).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] if the parameters are rejected by the
    /// network layer — unreachable for specs that came through
    /// [`CampaignSpec::parse`], which range-checks them up front.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn build(&self, n: usize) -> Result<ChannelModel, ScenarioError> {
        let bad = |e: beep_net::NetError| ScenarioError::Spec {
            line: 0,
            detail: format!("{}: {e}", self.label()),
        };
        match self {
            ChannelSpec::Iid { epsilon } => {
                if *epsilon == 0.0 {
                    Ok(ChannelModel::from(Noise::Noiseless))
                } else {
                    Noise::try_bernoulli(*epsilon)
                        .map(ChannelModel::from)
                        .map_err(bad)
                }
            }
            ChannelSpec::GilbertElliott {
                eps_good,
                eps_bad,
                p_good_to_bad,
                p_bad_to_good,
            } => beep_net::GilbertElliott::try_new(
                *eps_good,
                *eps_bad,
                *p_good_to_bad,
                *p_bad_to_good,
            )
            .map(ChannelModel::from)
            .map_err(bad),
            ChannelSpec::PerNode { pattern } => beep_net::PerNodeEps::try_new(pattern.clone())
                .map(ChannelModel::from)
                .map_err(bad),
            ChannelSpec::Adversarial {
                budget_frac,
                design_epsilon,
            } => {
                let budget = (budget_frac * n as f64).ceil() as usize;
                beep_net::AdversarialErasure::try_new(budget, *design_epsilon)
                    .map(ChannelModel::from)
                    .map_err(bad)
            }
        }
    }

    /// Parses a `[[channel]]` table: a `model` discriminator plus the
    /// model's parameter keys, all required, range-checked here so a bad
    /// spec fails at parse time rather than as a sea of failed cells.
    fn from_spec(table: &Json, line: usize) -> Result<ChannelSpec, ScenarioError> {
        let spec_err = |detail: String| ScenarioError::Spec { line, detail };
        let model = table
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| spec_err("[[channel]] needs model = \"…\"".into()))?;
        let allowed: &[&str] = match model {
            "iid" => &["epsilon"],
            "ge" | "gilbert_elliott" => &["eps_good", "eps_bad", "p_good_to_bad", "p_bad_to_good"],
            "per_node" | "pernode" => &["pattern"],
            "adversarial" | "adv" => &["budget_frac", "design_epsilon"],
            other => return Err(spec_err(format!("unknown channel model {other:?}"))),
        };
        // Same rationale as the root/topology key checks: an unknown
        // parameter must fail loudly, not silently sweep the default.
        if let Json::Obj(pairs) = table {
            for (key, _) in pairs {
                if key != "model" && !allowed.contains(&key.as_str()) {
                    return Err(spec_err(format!(
                        "unknown key {key:?} for channel model {model:?} \
                         (accepted: model, {})",
                        allowed.join(", ")
                    )));
                }
            }
        }
        let number = |key: &str| {
            table
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| spec_err(format!("channel model {model:?} needs {key} = <number>")))
        };
        let rate = |key: &str| {
            let v = number(key)?;
            if !(0.0..0.5).contains(&v) {
                return Err(spec_err(format!("{key} {v} outside [0, ½)")));
            }
            Ok(v)
        };
        let prob = |key: &str| {
            let v = number(key)?;
            if !(0.0..=1.0).contains(&v) {
                return Err(spec_err(format!("{key} {v} outside [0, 1]")));
            }
            Ok(v)
        };
        Ok(match model {
            "iid" => ChannelSpec::Iid {
                epsilon: rate("epsilon")?,
            },
            "ge" | "gilbert_elliott" => ChannelSpec::GilbertElliott {
                eps_good: rate("eps_good")?,
                eps_bad: rate("eps_bad")?,
                p_good_to_bad: prob("p_good_to_bad")?,
                p_bad_to_good: prob("p_bad_to_good")?,
            },
            "per_node" | "pernode" => {
                let pattern = f64_array(
                    table
                        .get("pattern")
                        .ok_or_else(|| spec_err("per_node channel needs pattern = […]".into()))?,
                    "pattern",
                )?;
                if pattern.is_empty() {
                    return Err(spec_err("pattern must be non-empty".into()));
                }
                for &e in &pattern {
                    if !(0.0..0.5).contains(&e) {
                        return Err(spec_err(format!("pattern rate {e} outside [0, ½)")));
                    }
                }
                ChannelSpec::PerNode { pattern }
            }
            _ => ChannelSpec::Adversarial {
                budget_frac: prob("budget_frac")?,
                design_epsilon: rate("design_epsilon")?,
            },
        })
    }
}

/// One adaptive-policy spec: an [`AdaptivePolicy`] with its per-round
/// budget expressed as a fraction of the cell's realized node count, so
/// one `[[faults]]` entry scales across a size sweep the way `fraction`
/// does for static faults.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PolicySpec {
    /// Jam the `⌊budget_frac · n⌋` loudest nodes each round
    /// ([`AdaptivePolicy::TargetLoudest`]).
    TargetLoudest {
        /// Per-round jam budget as a fraction of `n`, in `[0, 1]`.
        budget_frac: f64,
    },
    /// Spam `⌊budget_frac · n⌋` silent nodes while the protocol is active
    /// ([`AdaptivePolicy::RushingSpam`]).
    RushingSpam {
        /// Per-round spam budget as a fraction of `n`, in `[0, 1]`.
        budget_frac: f64,
        /// Rounds of spam to sustain after the last observed activity.
        window: u64,
    },
}

impl PolicySpec {
    /// The canonical label fragment, used in cell ids:
    /// `loudest-f{budget_frac}` or `rushing-f{budget_frac}-w{window}`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PolicySpec::TargetLoudest { budget_frac } => format!("loudest-f{budget_frac}"),
            PolicySpec::RushingSpam {
                budget_frac,
                window,
            } => format!("rushing-f{budget_frac}-w{window}"),
        }
    }

    /// Resolves the concrete [`AdaptivePolicy`] for a realized graph of
    /// `n` nodes: `budget = ⌊budget_frac · n⌋`.
    #[must_use]
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn realize(&self, n: usize) -> AdaptivePolicy {
        match self {
            PolicySpec::TargetLoudest { budget_frac } => AdaptivePolicy::TargetLoudest {
                budget: (budget_frac * n as f64).floor() as usize,
            },
            PolicySpec::RushingSpam {
                budget_frac,
                window,
            } => AdaptivePolicy::RushingSpam {
                budget: (budget_frac * n as f64).floor() as usize,
                window: *window,
            },
        }
    }
}

/// One fault-axis entry: a static [`FaultKind`] applied to a swept
/// fraction of each cell's nodes, an adaptive [`PolicySpec`], or both
/// composed (static faults realize first; the policy reacts on top).
///
/// The fraction is swept like ε: the *count* `⌊fraction · n⌋` scales
/// with each cell's realized size, and the faulty node set is realized
/// per cell from the engine's reserved fault stream
/// ([`FaultPlan::realize`] keyed by the cell seed), so a cell's faults
/// are a pure function of its id — adaptive decisions likewise draw only
/// from the reserved adaptive stream keyed by that seed. The campaign
/// fault axis is the implicit fault-free entry followed by the spec's
/// `[[faults]]` tables in order; fault-free cell ids carry no fault
/// segment, so pre-fault specs keep their ids — and therefore their
/// seeds — byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// How the sampled nodes misbehave (the crash round rides inside);
    /// `None` for a purely adaptive entry.
    pub kind: Option<FaultKind>,
    /// Fraction of nodes to sample for `kind`, in `[0, 1]` (0 when
    /// `kind` is `None`).
    pub fraction: f64,
    /// The adaptive policy layered on top, if any.
    pub policy: Option<PolicySpec>,
}

impl FaultSpec {
    /// The canonical label, used as the cell-id fault segment and the
    /// report's `faults` field: `crash-f{fraction}-r{round}`,
    /// `spam-f{fraction}`, or `mute-f{fraction}` for static entries, the
    /// bare [`PolicySpec::label`] for purely adaptive ones, and
    /// `{static}+{policy}` for composed entries.
    #[must_use]
    pub fn label(&self) -> String {
        let static_label = self.kind.map(|kind| match kind {
            FaultKind::Crash { round } => format!("crash-f{}-r{round}", self.fraction),
            FaultKind::ByzantineSpam => format!("spam-f{}", self.fraction),
            FaultKind::ByzantineMute => format!("mute-f{}", self.fraction),
        });
        match (static_label, self.policy) {
            (Some(s), Some(p)) => format!("{s}+{}", p.label()),
            (Some(s), None) => s,
            (None, Some(p)) => p.label(),
            (None, None) => "none".into(),
        }
    }

    /// Realizes the concrete [`FaultPlan`] for a cell: `⌊fraction · n⌋`
    /// nodes sampled from `seed`'s reserved fault stream, with the
    /// policy's budget resolved against `n` and attached on top.
    ///
    /// # Errors
    ///
    /// [`beep_net::NetError::InvalidFaultPlan`] if the fraction is out of
    /// range — unreachable for parsed specs, which range-check it.
    pub fn realize(&self, n: usize, seed: u64) -> Result<FaultPlan, beep_net::NetError> {
        let plan = match self.kind {
            Some(kind) => FaultPlan::realize(n, self.fraction, kind, seed)?,
            None => FaultPlan::none(),
        };
        Ok(match self.policy {
            Some(policy) => plan.with_policy(policy.realize(n)),
            None => plan,
        })
    }

    /// Parses a `[[faults]]` table: `kind = "crash"|"spam"|"mute"` with
    /// `fraction ∈ [0, 1]` (plus, crash only, the first dead `round`),
    /// and/or `policy = "target_loudest"|"rushing_spam"` with
    /// `budget_frac ∈ [0, 1]` (plus, rushing only, the post-activity
    /// `window`). At least one of `kind`/`policy` is required.
    fn from_spec(table: &Json, line: usize) -> Result<FaultSpec, ScenarioError> {
        let spec_err = |detail: String| ScenarioError::Spec { line, detail };
        let kind_name = table.get("kind").and_then(Json::as_str);
        let policy_name = table.get("policy").and_then(Json::as_str);
        if kind_name.is_none() && policy_name.is_none() {
            return Err(spec_err(
                "[[faults]] needs kind = \"crash\"|\"spam\"|\"mute\" \
                 and/or policy = \"target_loudest\"|\"rushing_spam\""
                    .into(),
            ));
        }
        // Same rationale as the other table arrays: a key the entry does
        // not accept must fail loudly, not silently sweep a default.
        let mut allowed: Vec<&str> = vec!["kind", "policy"];
        match kind_name {
            None => {}
            Some("crash") => allowed.extend(["fraction", "round"]),
            Some("spam" | "mute") => allowed.push("fraction"),
            Some(other) => return Err(spec_err(format!("unknown fault kind {other:?}"))),
        }
        match policy_name {
            None => {}
            Some("target_loudest") => allowed.push("budget_frac"),
            Some("rushing_spam") => allowed.extend(["budget_frac", "window"]),
            Some(other) => return Err(spec_err(format!("unknown fault policy {other:?}"))),
        }
        if let Json::Obj(pairs) = table {
            for (key, _) in pairs {
                if !allowed.contains(&key.as_str()) {
                    return Err(spec_err(format!(
                        "unknown key {key:?} for fault entry (accepted: {})",
                        allowed.join(", ")
                    )));
                }
            }
        }
        let frac_in_range = |key: &str| -> Result<f64, ScenarioError> {
            let v = table
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| spec_err(format!("[[faults]] needs {key} = <number>")))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(spec_err(format!("{key} {v} outside [0, 1]")));
            }
            Ok(v)
        };
        let (kind, fraction) = match kind_name {
            None => (None, 0.0),
            Some(name) => {
                let fraction = frac_in_range("fraction")?;
                let kind = match name {
                    "crash" => {
                        let round = table
                            .get("round")
                            .and_then(Json::as_i64)
                            .filter(|&r| r >= 0)
                            .ok_or_else(|| {
                                spec_err("crash faults need round = <non-negative integer>".into())
                            })?;
                        FaultKind::Crash {
                            round: u64::try_from(round).expect("non-negative"),
                        }
                    }
                    "spam" => FaultKind::ByzantineSpam,
                    _ => FaultKind::ByzantineMute,
                };
                (Some(kind), fraction)
            }
        };
        let policy = match policy_name {
            None => None,
            Some(name) => {
                let budget_frac = frac_in_range("budget_frac")?;
                Some(match name {
                    "target_loudest" => PolicySpec::TargetLoudest { budget_frac },
                    _ => {
                        let window = table
                            .get("window")
                            .and_then(Json::as_i64)
                            .filter(|&w| w >= 0)
                            .ok_or_else(|| {
                                spec_err(
                                    "rushing_spam needs window = <non-negative integer>".into(),
                                )
                            })?;
                        PolicySpec::RushingSpam {
                            budget_frac,
                            window: u64::try_from(window).expect("non-negative"),
                        }
                    }
                })
            }
        };
        Ok(FaultSpec {
            kind,
            fraction,
            policy,
        })
    }
}

/// A declarative campaign: the full sweep description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (report header).
    pub name: String,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Iid channel-axis shorthand (`ε` values; 0 = noiseless).
    pub epsilons: Vec<f64>,
    /// Channel-axis entries beyond `epsilons` (`[[channel]]` tables),
    /// appended to the axis in spec order.
    pub channels: Vec<ChannelSpec>,
    /// Fault-axis entries (`[[faults]]` tables); the implicit fault-free
    /// entry always precedes them.
    pub faults: Vec<FaultSpec>,
    /// Protocol axis.
    pub protocols: Vec<Protocol>,
    /// Seed axis (each seed reruns the whole grid).
    pub seeds: Vec<u64>,
}

/// One expanded cell: a single `(graph instance, channel, protocol,
/// seed)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Stable id: `family/n{size}/{channel}/protocol/s{seed}` for
    /// fault-free cells (byte-identical to pre-fault campaigns), with a
    /// [`FaultSpec::label`] segment spliced in before the protocol —
    /// `family/n{size}/{channel}/{fault}/protocol/s{seed}` — for faulted
    /// cells. The channel segment is [`ChannelSpec::label`] (`eps{ε}`
    /// for iid).
    pub id: String,
    /// The topology family to instantiate.
    pub family: TopologyFamily,
    /// Requested node count (the realized count may differ for
    /// grid/torus shapes; the report records both).
    pub requested_n: usize,
    /// The channel's calibration rate
    /// ([`ChannelSpec::calibration_epsilon`]).
    pub epsilon: f64,
    /// The channel-axis entry to instantiate.
    pub channel: ChannelSpec,
    /// The fault-axis entry to realize (`None` = fault-free).
    pub fault: Option<FaultSpec>,
    /// The protocol to run.
    pub protocol: Protocol,
    /// The sweep seed this cell belongs to.
    pub sweep_seed: u64,
    /// The derived per-cell seed (stable under spec edits: a pure
    /// function of the cell id, not of the cell's position).
    pub cell_seed: u64,
}

/// FNV-1a over a string — the cell-seed derivation. Part of the report
/// reproducibility contract: a cell's randomness depends only on its id.
#[must_use]
pub fn cell_seed(id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl CampaignSpec {
    /// The full channel axis: every `epsilons` entry as an iid channel,
    /// then the `channels` entries, in spec order.
    #[must_use]
    pub fn channel_axis(&self) -> Vec<ChannelSpec> {
        let mut axis: Vec<ChannelSpec> = self
            .epsilons
            .iter()
            .map(|&epsilon| ChannelSpec::Iid { epsilon })
            .collect();
        axis.extend(self.channels.iter().cloned());
        axis
    }

    /// The full fault axis: the implicit fault-free entry (`None`), then
    /// the `[[faults]]` entries in spec order.
    #[must_use]
    pub fn fault_axis(&self) -> Vec<Option<FaultSpec>> {
        let mut axis: Vec<Option<FaultSpec>> = vec![None];
        axis.extend(self.faults.iter().copied().map(Some));
        axis
    }

    /// Expands the sweep into its cell matrix, in deterministic order
    /// (topologies → sizes → channels → faults → protocols → seeds).
    ///
    /// Fault-free cells keep the historical five-segment id, so adding
    /// `[[faults]]` tables to a spec never changes their ids or derived
    /// seeds; faulted cells splice the fault label in before the
    /// protocol segment.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::EmptyMatrix`] if any axis is empty.
    pub fn expand(&self) -> Result<Vec<CellSpec>, ScenarioError> {
        let axis = self.channel_axis();
        let fault_axis = self.fault_axis();
        let mut cells = Vec::new();
        for topo in &self.topologies {
            for &n in &topo.sizes {
                for channel in &axis {
                    for fault in &fault_axis {
                        for &protocol in &self.protocols {
                            for &seed in &self.seeds {
                                let fault_segment = fault
                                    .as_ref()
                                    .map_or(String::new(), |f| format!("{}/", f.label()));
                                let id = format!(
                                    "{}/n{}/{}/{}{}/s{}",
                                    topo.family.label(),
                                    n,
                                    channel.label(),
                                    fault_segment,
                                    protocol.name(),
                                    seed
                                );
                                let derived = cell_seed(&id);
                                cells.push(CellSpec {
                                    id,
                                    family: topo.family,
                                    requested_n: n,
                                    epsilon: channel.calibration_epsilon(),
                                    channel: channel.clone(),
                                    fault: *fault,
                                    protocol,
                                    sweep_seed: seed,
                                    cell_seed: derived,
                                });
                            }
                        }
                    }
                }
            }
        }
        if cells.is_empty() {
            return Err(ScenarioError::EmptyMatrix);
        }
        Ok(cells)
    }

    /// Parses a spec file (see the module docs for the accepted TOML
    /// subset).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] with a line number on malformed input.
    pub fn parse(text: &str) -> Result<CampaignSpec, ScenarioError> {
        // Accumulate key/value tables: one root table plus one per
        // [[topology]]/[[channel]]/[[faults]] header, then assemble the
        // typed spec.
        #[derive(PartialEq)]
        enum Kind {
            Topology,
            Channel,
            Fault,
        }
        type Table = Vec<(String, Json)>;
        let mut root: Table = Vec::new();
        let mut tables: Vec<(usize, Kind, Table)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[topology]]" {
                tables.push((line_no, Kind::Topology, Vec::new()));
                continue;
            }
            if line == "[[channel]]" {
                tables.push((line_no, Kind::Channel, Vec::new()));
                continue;
            }
            if line == "[[faults]]" {
                tables.push((line_no, Kind::Fault, Vec::new()));
                continue;
            }
            if line.starts_with('[') {
                return Err(ScenarioError::Spec {
                    line: line_no,
                    detail: format!(
                        "unsupported table header {line:?} \
                         (only [[topology]], [[channel]], and [[faults]])"
                    ),
                });
            }
            let (key, value) = parse_assignment(line, line_no)?;
            // Assignments belong to the most recent table header, or to
            // the root before the first header.
            let table = tables.last_mut().map_or(&mut root, |(_, _, t)| t);
            if table.iter().any(|(k, _)| k == &key) {
                return Err(ScenarioError::Spec {
                    line: line_no,
                    detail: format!("duplicate key {key:?}"),
                });
            }
            table.push((key, value));
        }
        let mut topo_tables: Vec<(usize, Table)> = Vec::new();
        let mut channel_tables: Vec<(usize, Table)> = Vec::new();
        let mut fault_tables: Vec<(usize, Table)> = Vec::new();
        for (line, kind, table) in tables {
            match kind {
                Kind::Topology => topo_tables.push((line, table)),
                Kind::Channel => channel_tables.push((line, table)),
                Kind::Fault => fault_tables.push((line, table)),
            }
        }

        // Unknown keys are errors, not silently-dropped defaults: a
        // typo'd axis ("epsilon" for "epsilons") must not produce a
        // green sweep that quietly lost half its cells.
        for (key, _) in &root {
            if !["name", "seeds", "epsilons", "protocols"].contains(&key.as_str()) {
                return Err(ScenarioError::Spec {
                    line: 0,
                    detail: format!("unknown key {key:?} (expected name/seeds/epsilons/protocols)"),
                });
            }
        }

        let root = Json::Obj(root);
        let name = root
            .get("name")
            .map(|v| {
                v.as_str()
                    .map(ToString::to_string)
                    .ok_or(ScenarioError::Spec {
                        line: 0,
                        detail: "name must be a string".into(),
                    })
            })
            .transpose()?
            .unwrap_or_else(|| "campaign".into());

        let epsilons = match root.get("epsilons") {
            None => vec![0.0],
            Some(v) => f64_array(v, "epsilons")?,
        };
        for &eps in &epsilons {
            if !(0.0..0.5).contains(&eps) {
                return Err(ScenarioError::Spec {
                    line: 0,
                    detail: format!("epsilon {eps} outside [0, ½)"),
                });
            }
        }

        let seeds = match root.get("seeds") {
            None => vec![1],
            Some(v) => {
                let raw = i64_array(v, "seeds")?;
                raw.into_iter()
                    .map(|s| {
                        u64::try_from(s).map_err(|_| ScenarioError::Spec {
                            line: 0,
                            detail: format!("seed {s} must be non-negative"),
                        })
                    })
                    .collect::<Result<Vec<u64>, _>>()?
            }
        };

        let protocols = match root.get("protocols") {
            None => {
                return Err(ScenarioError::Spec {
                    line: 0,
                    detail: "missing protocols = [\"…\"]".into(),
                })
            }
            Some(v) => str_array(v, "protocols")?
                .into_iter()
                .map(|name| {
                    Protocol::from_name(&name).ok_or(ScenarioError::Spec {
                        line: 0,
                        detail: format!("unknown protocol {name:?}"),
                    })
                })
                .collect::<Result<Vec<Protocol>, _>>()?,
        };

        let mut topologies = Vec::new();
        for (line, table) in topo_tables {
            let table = Json::Obj(table);
            let family_name =
                table
                    .get("family")
                    .and_then(Json::as_str)
                    .ok_or(ScenarioError::Spec {
                        line,
                        detail: "[[topology]] needs family = \"…\"".into(),
                    })?;
            // Reject keys the named family does not accept (same
            // rationale as the root-key check: "deg" on a
            // random_regular table must not silently run degree 4).
            let allowed: &[&str] = match family_name {
                "random_geometric" | "rgg" => &["radius"],
                "random_regular" | "regular" => &["degree"],
                "gnp" => &["expected_degree"],
                "preferential_attachment" | "pa" => &["m"],
                _ => &[],
            };
            if let Json::Obj(pairs) = &table {
                for (key, _) in pairs {
                    if key != "family" && key != "sizes" && !allowed.contains(&key.as_str()) {
                        return Err(ScenarioError::Spec {
                            line,
                            detail: format!(
                                "unknown key {key:?} for family {family_name:?} \
                                 (accepted: family, sizes{}{})",
                                if allowed.is_empty() { "" } else { ", " },
                                allowed.join(", ")
                            ),
                        });
                    }
                }
            }
            let family = TopologyFamily::from_spec(family_name, &table, line)?;
            let sizes = match table.get("sizes") {
                None => {
                    return Err(ScenarioError::Spec {
                        line,
                        detail: "[[topology]] needs sizes = […]".into(),
                    })
                }
                Some(v) => i64_array(v, "sizes")?
                    .into_iter()
                    .map(|s| {
                        usize::try_from(s).map_err(|_| ScenarioError::Spec {
                            line,
                            detail: format!("size {s} must be non-negative"),
                        })
                    })
                    .collect::<Result<Vec<usize>, _>>()?,
            };
            topologies.push(TopologySpec { family, sizes });
        }
        if topologies.is_empty() {
            return Err(ScenarioError::Spec {
                line: 0,
                detail: "spec has no [[topology]] tables".into(),
            });
        }

        let mut channels = Vec::new();
        let mut labels: Vec<String> = epsilons
            .iter()
            .map(|&epsilon| ChannelSpec::Iid { epsilon }.label())
            .collect();
        for (line, table) in channel_tables {
            let channel = ChannelSpec::from_spec(&Json::Obj(table), line)?;
            let label = channel.label();
            // Two identical channel entries (or an iid one shadowing an
            // epsilons value) would collide on cell ids — and therefore
            // on cell seeds.
            if labels.contains(&label) {
                return Err(ScenarioError::Spec {
                    line,
                    detail: format!("duplicate channel {label:?} in the channel axis"),
                });
            }
            labels.push(label);
            channels.push(channel);
        }

        let mut faults = Vec::new();
        let mut fault_labels: Vec<String> = Vec::new();
        for (line, table) in fault_tables {
            let fault = FaultSpec::from_spec(&Json::Obj(table), line)?;
            let label = fault.label();
            // Same rationale as channel labels: two identical fault
            // entries would collide on cell ids, and therefore on seeds.
            if fault_labels.contains(&label) {
                return Err(ScenarioError::Spec {
                    line,
                    detail: format!("duplicate fault {label:?} in the fault axis"),
                });
            }
            fault_labels.push(label);
            faults.push(fault);
        }

        Ok(CampaignSpec {
            name,
            topologies,
            epsilons,
            channels,
            faults,
            protocols,
            seeds,
        })
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one `key = value` line into a [`Json`] value.
fn parse_assignment(line: &str, line_no: usize) -> Result<(String, Json), ScenarioError> {
    let spec_err = |detail: String| ScenarioError::Spec {
        line: line_no,
        detail,
    };
    let (key, value) = line
        .split_once('=')
        .ok_or_else(|| spec_err(format!("expected key = value, got {line:?}")))?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(spec_err(format!("invalid key {key:?}")));
    }
    let value = parse_value(value.trim(), line_no)?;
    Ok((key.to_string(), value))
}

fn parse_value(text: &str, line_no: usize) -> Result<Json, ScenarioError> {
    let spec_err = |detail: String| ScenarioError::Spec {
        line: line_no,
        detail,
    };
    if text.starts_with('[') {
        if !text.ends_with(']') {
            return Err(spec_err("arrays must close on the same line".into()));
        }
        let inner = &text[1..text.len() - 1];
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, line_no)?);
            }
        }
        return Ok(Json::Arr(items));
    }
    if text.starts_with('"') {
        if text.len() < 2 || !text.ends_with('"') || text[1..text.len() - 1].contains('"') {
            return Err(spec_err(format!("malformed string {text:?}")));
        }
        return Ok(Json::Str(text[1..text.len() - 1].to_string()));
    }
    match text {
        "true" => return Ok(Json::Bool(true)),
        "false" => return Ok(Json::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Json::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        if f.is_finite() {
            return Ok(Json::Float(f));
        }
    }
    Err(spec_err(format!("cannot parse value {text:?}")))
}

/// Splits on top-level commas (strings may contain commas).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

fn f64_array(v: &Json, key: &str) -> Result<Vec<f64>, ScenarioError> {
    v.as_array()
        .map(|items| items.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>())
        .and_then(|x| x)
        .ok_or(ScenarioError::Spec {
            line: 0,
            detail: format!("{key} must be an array of numbers"),
        })
}

fn i64_array(v: &Json, key: &str) -> Result<Vec<i64>, ScenarioError> {
    v.as_array()
        .map(|items| items.iter().map(Json::as_i64).collect::<Option<Vec<i64>>>())
        .and_then(|x| x)
        .ok_or(ScenarioError::Spec {
            line: 0,
            detail: format!("{key} must be an array of integers"),
        })
}

fn str_array(v: &Json, key: &str) -> Result<Vec<String>, ScenarioError> {
    v.as_array()
        .map(|items| {
            items
                .iter()
                .map(|i| i.as_str().map(ToString::to_string))
                .collect::<Option<Vec<String>>>()
        })
        .and_then(|x| x)
        .ok_or(ScenarioError::Spec {
            line: 0,
            detail: format!("{key} must be an array of strings"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        # a demo campaign
        name = "demo"
        seeds = [1, 2]
        epsilons = [0.0, 0.05]   # noiseless + light noise
        protocols = ["matching", "round_sim"]

        [[topology]]
        family = "cycle"
        sizes = [8, 16]

        [[topology]]
        family = "random_regular"
        sizes = [12]
        degree = 4

        [[channel]]
        model = "ge"              # bursty channel alongside the ε sweep
        eps_good = 0.01
        eps_bad = 0.2
        p_good_to_bad = 0.1
        p_bad_to_good = 0.5
    "#;

    #[test]
    fn parses_the_demo_spec() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.seeds, vec![1, 2]);
        assert_eq!(spec.epsilons, vec![0.0, 0.05]);
        assert_eq!(spec.protocols, vec![Protocol::Matching, Protocol::RoundSim]);
        assert_eq!(spec.topologies.len(), 2);
        assert_eq!(
            spec.topologies[1].family,
            TopologyFamily::RandomRegular { degree: 4 }
        );
        assert_eq!(
            spec.channels,
            vec![ChannelSpec::GilbertElliott {
                eps_good: 0.01,
                eps_bad: 0.2,
                p_good_to_bad: 0.1,
                p_bad_to_good: 0.5,
            }]
        );
        assert!(spec.faults.is_empty(), "no [[faults]] tables in the demo");
        assert_eq!(spec.fault_axis(), vec![None]);
    }

    #[test]
    fn fault_specs_parse_and_label() {
        let spec = CampaignSpec::parse(concat!(
            "protocols = [\"beep_consensus\"]\n",
            "[[topology]]\nfamily = \"complete\"\nsizes = [8]\n",
            "[[faults]]\nkind = \"crash\"\nfraction = 0.25\nround = 8\n",
            "[[faults]]\nkind = \"spam\"\nfraction = 0.125\n",
            "[[faults]]\nkind = \"mute\"\nfraction = 0.5\n",
        ))
        .unwrap();
        assert_eq!(
            spec.faults,
            vec![
                FaultSpec {
                    kind: Some(FaultKind::Crash { round: 8 }),
                    fraction: 0.25,
                    policy: None,
                },
                FaultSpec {
                    kind: Some(FaultKind::ByzantineSpam),
                    fraction: 0.125,
                    policy: None,
                },
                FaultSpec {
                    kind: Some(FaultKind::ByzantineMute),
                    fraction: 0.5,
                    policy: None,
                },
            ]
        );
        let labels: Vec<String> = spec.faults.iter().map(FaultSpec::label).collect();
        assert_eq!(labels, vec!["crash-f0.25-r8", "spam-f0.125", "mute-f0.5"]);
        // The axis leads with the implicit fault-free entry.
        assert_eq!(spec.fault_axis().len(), 4);
        assert_eq!(spec.fault_axis()[0], None);
    }

    #[test]
    fn adaptive_policy_specs_parse_and_label() {
        let spec = CampaignSpec::parse(concat!(
            "protocols = [\"beep_ben_or\"]\n",
            "[[topology]]\nfamily = \"complete\"\nsizes = [8]\n",
            "[[faults]]\npolicy = \"target_loudest\"\nbudget_frac = 0.25\n",
            "[[faults]]\npolicy = \"rushing_spam\"\nbudget_frac = 0.125\nwindow = 2\n",
            "[[faults]]\nkind = \"mute\"\nfraction = 0.125\n",
            "policy = \"rushing_spam\"\nbudget_frac = 0.25\nwindow = 1\n",
        ))
        .unwrap();
        assert_eq!(
            spec.faults,
            vec![
                FaultSpec {
                    kind: None,
                    fraction: 0.0,
                    policy: Some(PolicySpec::TargetLoudest { budget_frac: 0.25 }),
                },
                FaultSpec {
                    kind: None,
                    fraction: 0.0,
                    policy: Some(PolicySpec::RushingSpam {
                        budget_frac: 0.125,
                        window: 2,
                    }),
                },
                FaultSpec {
                    kind: Some(FaultKind::ByzantineMute),
                    fraction: 0.125,
                    policy: Some(PolicySpec::RushingSpam {
                        budget_frac: 0.25,
                        window: 1,
                    }),
                },
            ]
        );
        let labels: Vec<String> = spec.faults.iter().map(FaultSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "loudest-f0.25",
                "rushing-f0.125-w2",
                "mute-f0.125+rushing-f0.25-w1",
            ]
        );
    }

    #[test]
    fn adaptive_fault_specs_realize_scaled_budgets() {
        let spec = FaultSpec {
            kind: None,
            fraction: 0.0,
            policy: Some(PolicySpec::TargetLoudest { budget_frac: 0.25 }),
        };
        let plan = spec.realize(16, 5).unwrap();
        assert_eq!(plan.len(), 0, "purely adaptive: no static assignments");
        assert_eq!(
            plan.policy(),
            Some(AdaptivePolicy::TargetLoudest { budget: 4 })
        );
        assert!(plan.is_adaptive());
        // Composed: static realization plus the resolved policy.
        let both = FaultSpec {
            kind: Some(FaultKind::ByzantineMute),
            fraction: 0.25,
            policy: Some(PolicySpec::RushingSpam {
                budget_frac: 0.125,
                window: 2,
            }),
        };
        let plan = both.realize(16, 5).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.policy(),
            Some(AdaptivePolicy::RushingSpam {
                budget: 2,
                window: 2
            })
        );
        // A zero-budget fraction resolves to the no-op policy, which
        // keeps the plan behaviourally empty.
        let noop = FaultSpec {
            kind: None,
            fraction: 0.0,
            policy: Some(PolicySpec::TargetLoudest { budget_frac: 0.01 }),
        };
        assert!(noop.realize(8, 1).unwrap().is_empty());
    }

    #[test]
    fn fault_axis_extends_ids_without_touching_fault_free_cells() {
        let base = concat!(
            "protocols = [\"beep_consensus\"]\nseeds = [1]\n",
            "[[topology]]\nfamily = \"complete\"\nsizes = [8]\n",
        );
        let faulted = format!("{base}[[faults]]\nkind = \"mute\"\nfraction = 0.25\n");
        let plain_cells = CampaignSpec::parse(base).unwrap().expand().unwrap();
        let cells = CampaignSpec::parse(&faulted).unwrap().expand().unwrap();
        assert_eq!(cells.len(), 2 * plain_cells.len());
        // Fault-free cells are byte-identical to the pre-fault spec's —
        // same five-segment ids, same derived seeds.
        assert_eq!(cells[0].id, "complete/n8/eps0/beep_consensus/s1");
        assert_eq!(cells[0].id, plain_cells[0].id);
        assert_eq!(cells[0].cell_seed, plain_cells[0].cell_seed);
        assert_eq!(cells[0].fault, None);
        // Faulted cells splice the label in before the protocol.
        assert_eq!(cells[1].id, "complete/n8/eps0/mute-f0.25/beep_consensus/s1");
        assert_eq!(
            cells[1].fault,
            Some(FaultSpec {
                kind: Some(FaultKind::ByzantineMute),
                fraction: 0.25,
                policy: None,
            })
        );
        assert_eq!(cells[1].cell_seed, cell_seed(&cells[1].id));
    }

    #[test]
    fn fault_spec_realizes_a_plan_from_the_cell_seed() {
        let spec = FaultSpec {
            kind: Some(FaultKind::Crash { round: 3 }),
            fraction: 0.5,
            policy: None,
        };
        let plan = spec.realize(8, 77).unwrap();
        assert_eq!(plan.len(), 4, "⌊0.5 · 8⌋ nodes");
        assert_eq!(
            plan.assignments(),
            spec.realize(8, 77).unwrap().assignments()
        );
        assert!(plan
            .assignments()
            .iter()
            .all(|&(_, k)| k == FaultKind::Crash { round: 3 }));
    }

    #[test]
    fn expansion_is_the_full_product_in_stable_order() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        let cells = spec.expand().unwrap();
        // (2 + 1 sizes) × (2 ε + 1 channel) × 2 protocols × 2 seeds.
        assert_eq!(cells.len(), 3 * 3 * 2 * 2);
        assert_eq!(cells[0].id, "cycle/n8/eps0/matching/s1");
        assert_eq!(cells[1].id, "cycle/n8/eps0/matching/s2");
        // The [[channel]] entries extend the ε axis after the epsilons.
        assert_eq!(
            cells[8].id,
            "cycle/n8/ge-g0.01-b0.2-pgb0.1-pbg0.5/matching/s1"
        );
        assert!(
            (cells[8].epsilon - 0.2).abs() < 1e-12,
            "calibration = max rate"
        );
        // Cell seeds depend only on the id.
        assert_eq!(cells[0].cell_seed, cell_seed("cycle/n8/eps0/matching/s1"));
        let ids: std::collections::HashSet<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids.len(), cells.len(), "ids are unique");
    }

    #[test]
    fn defaults_fill_in() {
        let spec = CampaignSpec::parse(
            "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n",
        )
        .unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.seeds, vec![1]);
        assert_eq!(spec.epsilons, vec![0.0]);
        assert_eq!(spec.channels, vec![]);
    }

    #[test]
    fn channel_specs_parse_for_every_model() {
        let spec = CampaignSpec::parse(concat!(
            "protocols = [\"round_sim\"]\n",
            "epsilons = [0.0]\n",
            "[[topology]]\nfamily = \"cycle\"\nsizes = [8]\n",
            "[[channel]]\nmodel = \"iid\"\nepsilon = 0.1\n",
            "[[channel]]\nmodel = \"gilbert_elliott\"\neps_good = 0.0\neps_bad = 0.25\n",
            "p_good_to_bad = 0.05\np_bad_to_good = 0.4\n",
            "[[channel]]\nmodel = \"per_node\"\npattern = [0.0, 0.05]\n",
            "[[channel]]\nmodel = \"adversarial\"\nbudget_frac = 0.1\ndesign_epsilon = 0.05\n",
        ))
        .unwrap();
        let labels: Vec<String> = spec.channels.iter().map(ChannelSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "eps0.1",
                "ge-g0-b0.25-pgb0.05-pbg0.4",
                "pernode-0-0.05",
                "adv-f0.1-e0.05",
            ]
        );
        // The axis is the ε sweep followed by the [[channel]] entries.
        assert_eq!(spec.channel_axis().len(), 5);
        assert_eq!(spec.channel_axis()[0], ChannelSpec::Iid { epsilon: 0.0 });
    }

    #[test]
    fn channel_build_scales_the_adversary_budget_with_n() {
        let spec = ChannelSpec::Adversarial {
            budget_frac: 0.25,
            design_epsilon: 0.05,
        };
        for (n, expected) in [(10, 3), (64, 16), (0, 0)] {
            match spec.build(n).unwrap() {
                ChannelModel::AdversarialErasure(adv) => assert_eq!(adv.budget(), expected),
                other => panic!("expected adversary, got {other:?}"),
            }
        }
        // The other models ignore n entirely.
        let ge = ChannelSpec::GilbertElliott {
            eps_good: 0.01,
            eps_bad: 0.2,
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.5,
        };
        assert_eq!(ge.build(4).unwrap(), ge.build(4096).unwrap());
    }

    #[test]
    fn rejects_malformed_specs() {
        for (bad, needle) in [
            ("protocols = [\"nope\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]", "unknown protocol"),
            ("protocols = [\"mis\"]", "no [[topology]]"),
            ("protocols = [\"mis\"]\n[[topology]]\nsizes = [4]", "needs family"),
            ("protocols = [\"mis\"]\n[[topology]]\nfamily = \"zzz\"\nsizes = [4]", "unknown topology family"),
            ("epsilons = [0.6]\nprotocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]", "outside"),
            ("protocols = [\"mis\"]\n[table]\n", "unsupported table"),
            ("protocols = [\"mis\"]\nprotocols = [\"mis\"]", "duplicate key"),
            ("x y z", "key = value"),
            // Typo'd axis name: must be rejected, not defaulted away.
            (
                "epsilon = [0.1]\nprotocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]",
                "unknown key \"epsilon\"",
            ),
            // Parameter the named family does not accept.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"random_regular\"\nsizes = [4]\ndeg = 6",
                "unknown key \"deg\"",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"cycle\"\nsizes = [4]\nradius = 0.5",
                "unknown key \"radius\"",
            ),
            // Channel tables: same strictness as topology tables.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nepsilon = 0.1",
                "needs model",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"zzz\"",
                "unknown channel model",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"iid\"\nepsilon = 0.6",
                "outside [0, ½)",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"iid\"\neps_bad = 0.1",
                "unknown key \"eps_bad\"",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"ge\"\neps_good = 0.0\neps_bad = 0.2\np_good_to_bad = 0.1",
                "needs p_bad_to_good",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"adv\"\nbudget_frac = 1.5\ndesign_epsilon = 0.1",
                "outside [0, 1]",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"per_node\"\npattern = []",
                "non-empty",
            ),
            // An iid channel shadowing an epsilons entry collides on ids.
            (
                "epsilons = [0.05]\nprotocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[channel]]\nmodel = \"iid\"\nepsilon = 0.05",
                "duplicate channel",
            ),
            // Fault tables: same strictness as the other table arrays.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nfraction = 0.1",
                "needs kind",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"gray\"\nfraction = 0.1",
                "unknown fault kind",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"spam\"",
                "needs fraction",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"spam\"\nfraction = 1.5",
                "outside [0, 1]",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"crash\"\nfraction = 0.1",
                "crash faults need round",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"crash\"\nfraction = 0.1\nround = -2",
                "crash faults need round",
            ),
            // `round` only means something for crashes.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"mute\"\nfraction = 0.1\nround = 3",
                "unknown key \"round\"",
            ),
            // Two identical fault entries collide on ids.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nkind = \"spam\"\nfraction = 0.1\n[[faults]]\nkind = \"spam\"\nfraction = 0.1",
                "duplicate fault",
            ),
            // Adaptive policies: same strictness as static kinds.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\npolicy = \"zzz\"\nbudget_frac = 0.1",
                "unknown fault policy",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\npolicy = \"target_loudest\"",
                "needs budget_frac",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\npolicy = \"target_loudest\"\nbudget_frac = 1.5",
                "outside [0, 1]",
            ),
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\npolicy = \"rushing_spam\"\nbudget_frac = 0.1",
                "rushing_spam needs window",
            ),
            // `window` only means something for rushing_spam.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\npolicy = \"target_loudest\"\nbudget_frac = 0.1\nwindow = 2",
                "unknown key \"window\"",
            ),
            // A purely adaptive entry has no static fraction to sweep.
            (
                "protocols = [\"mis\"]\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n[[faults]]\nfraction = 0.1\npolicy = \"target_loudest\"\nbudget_frac = 0.1",
                "unknown key \"fraction\"",
            ),
        ] {
            let err = CampaignSpec::parse(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn empty_axis_is_an_empty_matrix() {
        let spec =
            CampaignSpec::parse("protocols = []\n[[topology]]\nfamily = \"path\"\nsizes = [4]\n")
                .unwrap();
        assert_eq!(spec.expand().unwrap_err(), ScenarioError::EmptyMatrix);
    }

    #[test]
    fn families_build_deterministically() {
        for family in [
            TopologyFamily::Cycle,
            TopologyFamily::Torus,
            TopologyFamily::RandomGeometric { radius: None },
            TopologyFamily::RandomRegular { degree: 4 },
            TopologyFamily::PreferentialAttachment { m: 2 },
            TopologyFamily::Gnp {
                expected_degree: 4.0,
            },
            TopologyFamily::RandomTree,
        ] {
            let (a, pa) = family.build(16, 9).unwrap();
            let (b, pb) = family.build(16, 9).unwrap();
            assert_eq!(a.edges(), b.edges(), "{}", family.label());
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn torus_and_grid_realize_near_the_request() {
        let (g, _) = TopologyFamily::Torus.build(16, 0).unwrap();
        assert_eq!(g.node_count(), 16);
        let (g, _) = TopologyFamily::Grid.build(10, 0).unwrap();
        assert!(g.node_count() >= 10);
        assert!(TopologyFamily::Torus.build(4, 0).is_err());
    }

    #[test]
    fn auto_rgg_radius_is_recorded_and_mostly_connects() {
        let (g, params) = TopologyFamily::RandomGeometric { radius: None }
            .build(64, 3)
            .unwrap();
        assert_eq!(params.len(), 1);
        assert!(params[0].1 > 0.0);
        // Above the connectivity threshold the giant component should
        // dominate; allow stragglers but not dust.
        assert!(g.edge_count() > 64);
    }
}
