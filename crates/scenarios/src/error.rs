//! Scenario-layer error type.

use crate::json::JsonError;
use std::error::Error;
use std::fmt;

/// Errors from parsing specs, expanding matrices, or validating reports.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The campaign spec is malformed.
    Spec {
        /// Line number (1-based) when known, 0 otherwise.
        line: usize,
        /// What is wrong.
        detail: String,
    },
    /// The spec expanded to zero cells (empty sweep axes).
    EmptyMatrix,
    /// A report failed JSON parsing.
    Json(JsonError),
    /// A report parsed but violates the campaign-report schema.
    Report {
        /// What is wrong.
        detail: String,
    },
    /// A checkpoint journal could not be written, read, or trusted
    /// (I/O failure, corrupt non-final line, or a spec-fingerprint
    /// mismatch against the campaign being resumed).
    Checkpoint {
        /// What is wrong.
        detail: String,
    },
    /// The executor stopped before every cell completed (a `max_cells`
    /// cut) where a full report was required.
    Incomplete {
        /// Cells that finished (replayed or executed).
        completed: usize,
        /// Cells in the expanded matrix.
        total: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec { line: 0, detail } => write!(f, "spec: {detail}"),
            ScenarioError::Spec { line, detail } => write!(f, "spec line {line}: {detail}"),
            ScenarioError::EmptyMatrix => {
                write!(f, "campaign expands to zero cells (check the sweep axes)")
            }
            ScenarioError::Json(e) => write!(f, "report is not JSON: {e}"),
            ScenarioError::Report { detail } => write!(f, "report schema violation: {detail}"),
            ScenarioError::Checkpoint { detail } => write!(f, "checkpoint: {detail}"),
            ScenarioError::Incomplete { completed, total } => write!(
                f,
                "campaign incomplete: {completed}/{total} cells done \
                 (resume from the checkpoint to finish)"
            ),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        ScenarioError::Json(e)
    }
}
