//! Scenario-layer error type.

use crate::json::JsonError;
use std::error::Error;
use std::fmt;

/// Errors from parsing specs, expanding matrices, or validating reports.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The campaign spec is malformed.
    Spec {
        /// Line number (1-based) when known, 0 otherwise.
        line: usize,
        /// What is wrong.
        detail: String,
    },
    /// The spec expanded to zero cells (empty sweep axes).
    EmptyMatrix,
    /// A report failed JSON parsing.
    Json(JsonError),
    /// A report parsed but violates the campaign-report schema.
    Report {
        /// What is wrong.
        detail: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec { line: 0, detail } => write!(f, "spec: {detail}"),
            ScenarioError::Spec { line, detail } => write!(f, "spec line {line}: {detail}"),
            ScenarioError::EmptyMatrix => {
                write!(f, "campaign expands to zero cells (check the sweep axes)")
            }
            ScenarioError::Json(e) => write!(f, "report is not JSON: {e}"),
            ScenarioError::Report { detail } => write!(f, "report schema violation: {detail}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        ScenarioError::Json(e)
    }
}
