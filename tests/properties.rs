//! Cross-crate property tests: for arbitrary random graphs and message
//! assignments, the simulated round must deliver exactly what the model
//! defines (at ε = 0), and application outputs must validate.

use noisy_beeps::congest::{Message, MessageWriter};
use noisy_beeps::core::{BroadcastSimulator, SimulationParams};
use noisy_beeps::net::{BeepNetwork, Graph, Noise};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const B: usize = 10;

/// Strategy: a random simple graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..10).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        prop::collection::vec((0..n, 0..n), 0..=max_edges).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
            Graph::from_edges(n, &edges).expect("filtered to valid edges")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn noiseless_simulated_round_equals_model_semantics(
        graph in arb_graph(),
        sends in prop::collection::vec(prop::option::of(0u64..1024), 10),
        seed in any::<u64>(),
    ) {
        let n = graph.node_count();
        let outgoing: Vec<Option<Message>> = (0..n)
            .map(|v| sends[v].map(|x| MessageWriter::new().push_uint(x, B).finish(B)))
            .collect();
        let params = SimulationParams::calibrated(0.0);
        let sim = BroadcastSimulator::new(params, B, graph.max_degree()).expect("valid");
        let mut net = BeepNetwork::new(graph.clone(), Noise::Noiseless, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let outcome = sim.simulate_round(&mut net, &outgoing, &mut rng).expect("round runs");

        // The model's defined semantics: node v receives the multiset of
        // its broadcasting neighbors' messages.
        for v in 0..n {
            let mut ideal: Vec<Message> = graph
                .neighbors(v)
                .iter()
                .filter_map(|&u| outgoing[u].clone())
                .collect();
            ideal.sort_unstable();
            prop_assert_eq!(&outcome.delivered[v], &ideal, "node {}", v);
        }
        prop_assert!(outcome.stats.all_perfect());
        // Cost invariant: exactly 2·c³·(Δ+1)·B beep rounds.
        prop_assert_eq!(
            net.stats().rounds,
            params.rounds_per_broadcast_round(B, graph.max_degree())
        );
    }

    #[test]
    fn matching_output_is_always_valid(graph in arb_graph(), seed in any::<u64>()) {
        // maximal_matching validates internally and errors otherwise;
        // at ε = 0 it must always succeed.
        let result = noisy_beeps::apps::maximal_matching(&graph, 0.0, seed);
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }

    #[test]
    fn mis_output_is_always_valid(graph in arb_graph(), seed in any::<u64>()) {
        let result = noisy_beeps::apps::maximal_independent_set(&graph, 0.0, seed);
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }
}
