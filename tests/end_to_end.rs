//! Whole-pipeline integration tests: applications over noisy beeps on
//! varied topologies, the CONGEST wrapper over the beeping engine, and
//! cross-checks between the Algorithm 1 simulator and the TDMA baseline.

use noisy_beeps::core::baseline::TdmaSimulator;
use noisy_beeps::core::lower_bound::{CongestLocalBroadcast, LocalBroadcastInstance};
use noisy_beeps::core::{SimulatedCongestRunner, SimulationParams};
use noisy_beeps::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn matching_over_noisy_beeps_on_varied_topologies() {
    for (name, g) in [
        ("path", topology::path(8).unwrap()),
        ("cycle", topology::cycle(9).unwrap()),
        ("star", topology::star(6).unwrap()),
        ("grid", topology::grid(3, 3).unwrap()),
    ] {
        // maximal_matching validates symmetry + maximality internally.
        let result = maximal_matching(&g, 0.05, 17).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(result.output.len(), g.node_count(), "{name}");
        assert_eq!(
            result.report.beep_rounds,
            result.report.congest_rounds * result.report.beep_rounds_per_congest_round,
            "{name}: overhead accounting"
        );
    }
}

#[test]
fn mis_and_coloring_over_noisy_beeps() {
    let g = topology::grid(3, 3).unwrap();
    let mis = maximal_independent_set(&g, 0.05, 3).expect("validated MIS");
    assert!(mis.output.iter().any(|&b| b));
    let col = coloring(&g, 0.05, 4).expect("validated coloring");
    assert!(col.output.iter().all(|&c| c <= g.max_degree() as u64));
}

#[test]
fn congest_algorithm_runs_over_noisy_beeps() {
    // Corollary 12 under noise, end to end: CONGEST local broadcast on
    // K_{2,2} through the wrapper, Algorithm 1, and a noisy channel.
    let eps = 0.05;
    let mut rng = StdRng::seed_from_u64(9);
    let inst = LocalBroadcastInstance::random(2, 4, 8, &mut rng);
    let algos: Vec<CongestLocalBroadcast> = (0..4)
        .map(|v| {
            let outgoing = inst
                .graph
                .neighbors(v)
                .iter()
                .map(|&u| (u, inst.inputs[&(v, u)].clone()))
                .collect();
            CongestLocalBroadcast::new(8, outgoing)
        })
        .collect();
    let runner = SimulatedCongestRunner::new(
        &inst.graph,
        8,
        21,
        SimulationParams::calibrated(eps),
        Noise::bernoulli(eps),
    );
    let (solved, report) = runner.run_to_completion(algos, 3).expect("completes");
    for (v, node) in solved.iter().enumerate() {
        for (sender, msg) in node.output() {
            assert_eq!(msg, inst.inputs[&(sender, v)], "{sender} → {v}");
        }
    }
    assert!(report.beep_rounds > 0);
}

#[test]
fn tdma_baseline_and_algorithm1_agree_on_outputs() {
    // Two completely different physical realizations of a Broadcast
    // CONGEST round must drive the same algorithm to the same answer.
    let g = topology::cycle(8).unwrap();
    let n = g.node_count();
    let bits = algorithms::LubyMis::required_message_bits(n);
    let iters = algorithms::LubyMis::suggested_iterations(n);
    let seed = 13;

    let params = SimulationParams::calibrated(0.0);
    let runner = SimulatedBroadcastRunner::new(&g, bits, seed, params, Noise::Noiseless);
    let mut ours: Vec<Box<algorithms::LubyMis>> = (0..n)
        .map(|_| Box::new(algorithms::LubyMis::new(iters)))
        .collect();
    runner
        .run_to_completion(&mut ours, algorithms::LubyMis::rounds_for(iters))
        .expect("algorithm 1 run");

    let tdma = TdmaSimulator::new(&g, bits, 0.0);
    let mut base: Vec<Box<algorithms::LubyMis>> = (0..n)
        .map(|_| Box::new(algorithms::LubyMis::new(iters)))
        .collect();
    tdma.run_to_completion(
        &g,
        Noise::Noiseless,
        seed,
        &mut base,
        algorithms::LubyMis::rounds_for(iters),
    )
    .expect("tdma run");

    for v in 0..n {
        assert_eq!(ours[v].output(), base[v].output(), "node {v}");
    }
}

#[test]
fn beep_wave_and_simulated_flood_deliver_the_same_payload() {
    let g = topology::grid(4, 4).unwrap();
    let n = g.node_count();
    let payload = 0x1234u64;

    let wave = beep_wave_broadcast(&g, 0, &BitVec::from_u64_lsb(payload, 16), 3).unwrap();
    assert!(wave
        .received
        .iter()
        .all(|r| r.as_ref().map(BitVec::to_u64_lsb) == Some(payload)));

    let params = SimulationParams::calibrated(0.0);
    let runner = SimulatedBroadcastRunner::new(&g, 16, 3, params, Noise::Noiseless);
    let mut floods: Vec<Box<algorithms::Flood>> = (0..n)
        .map(|_| Box::new(algorithms::Flood::new(0, payload, 16)))
        .collect();
    runner.run_to_completion(&mut floods, n).unwrap();
    assert!(floods.iter().all(|f| f.output() == Some(payload)));

    // And the wave is dramatically cheaper, as Section 1.2 implies.
    assert!(wave.rounds < 100);
}

#[test]
fn distributed_setup_feeds_the_tdma_baseline() {
    // Close the loop on the baselines' setup phase: compute the G²
    // coloring *distributedly* (CONGEST), hand it to the TDMA simulator,
    // and run an algorithm on the resulting schedule.
    use noisy_beeps::congest::algorithms::Distance2Coloring;
    use noisy_beeps::congest::CongestRunner;

    let g = topology::grid(3, 4).unwrap();
    let n = g.node_count();
    let delta = g.max_degree();
    let bits = Distance2Coloring::required_message_bits(delta);
    let iters = Distance2Coloring::suggested_iterations(n);
    let runner = CongestRunner::new(&g, bits, 7);
    let mut algos: Vec<Box<Distance2Coloring>> = (0..n)
        .map(|v| {
            Box::new(Distance2Coloring::new(
                delta,
                g.neighbors(v).to_vec(),
                iters,
            ))
        })
        .collect();
    runner
        .run_to_completion(&mut algos, Distance2Coloring::rounds_for(iters))
        .expect("distributed coloring converges");
    let coloring: Vec<usize> = algos
        .iter()
        .map(|a| a.output().expect("colored") as usize)
        .collect();

    // The distributed coloring drives the baseline simulator.
    let tdma = TdmaSimulator::with_coloring(&g, coloring, 16, 0.0);
    let mut floods: Vec<Box<algorithms::Flood>> = (0..n)
        .map(|_| Box::new(algorithms::Flood::new(0, 0x77, 16)))
        .collect();
    let report = tdma
        .run_to_completion(&g, Noise::Noiseless, 9, &mut floods, n)
        .expect("tdma run");
    assert!(floods.iter().all(|f| f.output() == Some(0x77)));
    assert!(report.stats.all_perfect());
}

#[test]
fn energy_accounting_is_consistent() {
    // Beeps ≤ rounds × n, and a silent network spends none.
    let g = topology::cycle(6).unwrap();
    let params = SimulationParams::calibrated(0.0);
    let runner = SimulatedBroadcastRunner::new(&g, 8, 1, params, Noise::Noiseless);
    let mut algos: Vec<Box<algorithms::LeaderElection>> = (0..6)
        .map(|_| Box::new(algorithms::LeaderElection::new(4)))
        .collect();
    let report = runner.run_to_completion(&mut algos, 6).unwrap();
    assert!(report.beeps <= (report.beep_rounds as u64) * 6);
    assert!(report.beeps > 0);
}
