//! Failure injection: the library must degrade with errors, never panics,
//! when pushed outside its working envelope.

use noisy_beeps::congest::algorithms::Flood;
use noisy_beeps::congest::CongestError;
use noisy_beeps::core::{BroadcastSimulator, SimError, SimulatedBroadcastRunner, SimulationParams};
use noisy_beeps::net::{topology, BeepNetwork, Noise};
use noisy_beeps::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn adversarial_noise_yields_decode_failures_not_panics() {
    // ε = 0.45 with constants calibrated for far less: rounds may decode
    // wrongly — the stats must say so, and nothing may panic.
    let eps = 0.45;
    let g = topology::complete(6).unwrap();
    let mut params = SimulationParams::calibrated(0.3); // deliberately undersized
    params.epsilon = eps;
    let sim = BroadcastSimulator::new(params, 12, g.max_degree()).unwrap();
    let mut net = BeepNetwork::new(g, Noise::bernoulli(eps), 2);
    let mut rng = StdRng::seed_from_u64(3);
    let outgoing: Vec<Option<Message>> = (0..6u64)
        .map(|v| Some(MessageWriter::new().push_uint(v, 12).finish(12)))
        .collect();
    let mut imperfect = 0;
    for _ in 0..5 {
        let outcome = sim
            .simulate_round(&mut net, &outgoing, &mut rng)
            .expect("no panic");
        if !outcome.stats.all_perfect() {
            imperfect += 1;
        }
    }
    assert!(
        imperfect > 0,
        "ε = 0.45 with undersized constants should corrupt something"
    );
}

#[test]
fn degree_larger_than_code_overlap_still_runs() {
    // Build the simulator for Δ = 2 but run it on a star with Δ = 5: the
    // beep code's k is undersized, so decoding quality degrades — but the
    // API contract (no panic, stats reported) must hold.
    let g = topology::star(6).unwrap(); // Δ = 5
    let params = SimulationParams::calibrated(0.0);
    let sim = BroadcastSimulator::new(params, 8, 2).unwrap(); // undersized k
    let mut net = BeepNetwork::new(g, Noise::Noiseless, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let outgoing: Vec<Option<Message>> = (0..6u64)
        .map(|v| Some(MessageWriter::new().push_uint(v, 8).finish(8)))
        .collect();
    let outcome = sim
        .simulate_round(&mut net, &outgoing, &mut rng)
        .expect("no panic");
    assert_eq!(outcome.delivered.len(), 6);
}

#[test]
fn error_paths_are_reported_as_errors() {
    let g = topology::path(3).unwrap();
    let params = SimulationParams::calibrated(0.0);

    // Wrong outgoing count.
    let sim = BroadcastSimulator::new(params, 8, 2).unwrap();
    let mut net = BeepNetwork::new(g.clone(), Noise::Noiseless, 0);
    let mut rng = StdRng::seed_from_u64(0);
    assert!(matches!(
        sim.simulate_round(&mut net, &[None], &mut rng),
        Err(SimError::OutgoingCount { .. })
    ));

    // Noise mismatch between simulator and channel.
    let mut noisy_net = BeepNetwork::new(g.clone(), Noise::bernoulli(0.2), 0);
    assert!(matches!(
        sim.simulate_round(&mut noisy_net, &[None, None, None], &mut rng),
        Err(SimError::NoiseMismatch { .. })
    ));

    // Round budget exhaustion surfaces as an error with the budget.
    let runner = SimulatedBroadcastRunner::new(&g, 8, 0, params, Noise::Noiseless);
    let mut stuck: Vec<Box<algorithms::LeaderElection>> = (0..3)
        .map(|_| Box::new(algorithms::LeaderElection::new(100)))
        .collect();
    assert!(matches!(
        runner.run_to_completion(&mut stuck, 1),
        Err(SimError::Congest(CongestError::RoundBudgetExhausted {
            budget: 1
        }))
    ));
}

#[test]
fn theory_profile_works_at_toy_scale() {
    // The paper's proof constants are enormous; verify they actually run
    // (and decode perfectly) at a tiny scale. ε = 0.25 gives the smallest
    // theory constant (≈ 311); B = 2 and Δ = 1 keep the length ≈ 2.4·10⁸…
    // still too big. Use the *structure* instead: theory_expansion feeds
    // codes_for without overflow and the derived shapes are consistent.
    let eps = 0.25;
    let params = SimulationParams::theory(eps);
    assert!(params.expansion >= 100);
    let codes = params.codes_for(2, 1).expect("valid construction");
    let c = params.expansion;
    assert_eq!(codes.beep.params().length(), c * c * c * 2 * 2);
    assert_eq!(
        codes.beep.params().weight(),
        codes.distance.params().length()
    );
}

#[test]
fn zero_and_empty_graphs_are_handled() {
    // Empty outgoing round on a singleton graph.
    let g = noisy_beeps::net::Graph::from_edges(1, &[]).unwrap();
    let params = SimulationParams::calibrated(0.0);
    let sim = BroadcastSimulator::new(params, 8, 0).unwrap();
    let mut net = BeepNetwork::new(g, Noise::Noiseless, 0);
    let mut rng = StdRng::seed_from_u64(0);
    let outcome = sim.simulate_round(&mut net, &[None], &mut rng).unwrap();
    assert!(outcome.delivered[0].is_empty());
    assert!(outcome.stats.all_perfect());
}

#[test]
fn oversized_messages_are_rejected_cleanly() {
    // An algorithm that violates the width contract: the runner must
    // reject its message with an error naming the node.
    struct WrongWidth;
    impl BroadcastAlgorithm for WrongWidth {
        fn init(&mut self, _ctx: &noisy_beeps::congest::NodeCtx) {}
        fn round_message(&mut self, _round: usize) -> Option<Message> {
            Some(Message::zero(16))
        }
        fn on_receive(&mut self, _round: usize, _received: &[Message]) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    let g = topology::path(2).unwrap();
    let params = SimulationParams::calibrated(0.0);
    let runner = SimulatedBroadcastRunner::new(&g, 8, 0, params, Noise::Noiseless);
    let mut algos: Vec<Box<WrongWidth>> = vec![Box::new(WrongWidth), Box::new(WrongWidth)];
    assert!(matches!(
        runner.run_to_completion(&mut algos, 4),
        Err(SimError::Congest(CongestError::MessageWidth {
            expected: 8,
            actual: 16,
            node: 0
        }))
    ));
    let _ = Flood::new(0, 1, 16); // keep the import exercised
}
