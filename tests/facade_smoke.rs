//! Facade smoke test: `noisy_beeps::prelude::*` must keep re-exporting the
//! workspace's main entry points, and the re-exported items must be the
//! same types the sub-crates define (not accidental shadows).

use noisy_beeps::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn prelude_reexports_resolve_and_work() {
    // bits layer.
    let v = BitVec::zeros(16);
    assert_eq!(v.len(), 16);

    // net layer: topology constructors, graph accessors, noise, actions.
    let g: Graph = topology::grid(3, 3).unwrap();
    assert_eq!(g.node_count(), 9);
    let noise = Noise::bernoulli(0.1);
    assert!(noise.epsilon() > 0.0);
    let mut net = BeepNetwork::new(g.clone(), Noise::Noiseless, 1);
    let heard = net.run_round(&[Action::Listen; 9]).unwrap();
    assert!(heard.iter().all(|&b| !b));

    // congest layer: message plumbing and the runner types.
    let msg = MessageWriter::new().push_uint(5, 8).finish(8);
    assert_eq!(Message::from_bits(&msg.to_bitvec()), msg);
    let _native: BroadcastRunner = BroadcastRunner::new(&g, 8, 1);
    let _full: CongestRunner = CongestRunner::new(&g, 8, 1);

    // core layer: params + simulated runners exist and agree with net types.
    let params = SimulationParams::calibrated(0.05);
    let _sim = SimulatedBroadcastRunner::new(&g, 8, 1, params, Noise::bernoulli(0.05));
    let _adapter_type_exists: Option<CongestAdapter<algorithms::Flood>> = None;
    let _sim_congest_exists: Option<SimulatedCongestRunner> = None;
    let _bsim_exists: Option<BroadcastSimulator> = None;

    // baseline / lower_bound modules are reachable through the prelude.
    let tdma = baseline::TdmaSimulator::new(&g, 8, 0.0);
    assert!(tdma.rounds_per_congest_round() > 0);
    let mut rng = StdRng::seed_from_u64(7);
    let inst = lower_bound::LocalBroadcastInstance::random(2, 4, 4, &mut rng);
    drop(inst);
}

#[test]
fn prelude_apps_solvers_run() {
    let g = topology::grid(3, 3).unwrap();

    let matching = maximal_matching(&g, 0.0, 3).unwrap();
    assert_eq!(matching.output.len(), 9);
    assert!(validate::check_matching(&g, &matching.output).is_empty());

    let mis = maximal_independent_set(&g, 0.0, 4).unwrap();
    assert!(validate::check_mis(&g, &mis.output).is_empty());

    let colors = coloring(&g, 0.0, 5).unwrap();
    let as_options: Vec<Option<u64>> = colors.output.iter().copied().map(Some).collect();
    assert!(validate::check_coloring(&g, &as_options).is_empty());

    let wave = beep_wave_broadcast(&g, 0, &BitVec::from_u64_lsb(0xAB, 8), 6).unwrap();
    assert_eq!(wave.received.len(), 9);
    assert!(wave
        .received
        .iter()
        .all(|r| r.as_ref() == Some(&BitVec::from_u64_lsb(0xAB, 8))));

    let d = g.diameter().unwrap();
    let leader = beep_leader_election(&g, d + 1, 7).unwrap();
    assert!(leader.leader < 9);
}

#[test]
fn prelude_scenario_layer_runs_a_campaign() {
    // The scenario layer is reachable through the prelude: registry
    // lookups plus a one-cell campaign end to end.
    assert_eq!(Protocol::from_name("matching"), Some(Protocol::Matching));
    let spec = CampaignSpec {
        name: "facade".into(),
        topologies: vec![noisy_beeps::scenarios::TopologySpec {
            family: TopologyFamily::Cycle,
            sizes: vec![6],
        }],
        epsilons: vec![0.0],
        channels: vec![],
        faults: vec![],
        protocols: vec![Protocol::Wave],
        seeds: vec![1],
    };
    let report = run_campaign(&spec, &RunOptions::default()).unwrap();
    assert_eq!(report.cells.len(), 1);
    assert!(report.cells[0].success);
    noisy_beeps::scenarios::validate_report(&report.to_json(true)).unwrap();
}

#[test]
fn facade_modules_alias_the_subcrates() {
    // The module aliases and the prelude must expose the same types.
    let a: noisy_beeps::bits::BitVec = BitVec::zeros(4);
    let b: noisy_beeps::prelude::BitVec = a;
    assert_eq!(b.len(), 4);
    let p: noisy_beeps::core::SimulationParams = SimulationParams::calibrated(0.1);
    assert_eq!(p.epsilon, 0.1);
}
