//! The reproduction's central integration property (Theorem 11): a
//! Broadcast CONGEST algorithm run natively and run over the beeping
//! simulation must produce identical outputs — because every simulated
//! communication round delivers exactly the same message multisets.

use noisy_beeps::congest::algorithms::{BfsTree, Flood, LeaderElection, LubyMis, MaximalMatching};
use noisy_beeps::congest::BroadcastRunner;
use noisy_beeps::core::{SimulatedBroadcastRunner, SimulationParams};
use noisy_beeps::net::{topology, Graph, Noise};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", topology::path(7).unwrap()),
        ("cycle", topology::cycle(8).unwrap()),
        ("star", topology::star(6).unwrap()),
        ("grid", topology::grid(3, 3).unwrap()),
        ("complete", topology::complete(5).unwrap()),
    ]
}

/// Runs the same algorithm constructor both ways and compares outputs.
fn assert_equivalent<A, F, O>(
    graph: &Graph,
    bits: usize,
    budget: usize,
    make: F,
    output: impl Fn(&A) -> O,
) where
    A: noisy_beeps::congest::BroadcastAlgorithm,
    F: Fn() -> A,
    O: std::fmt::Debug + PartialEq,
{
    let n = graph.node_count();
    let seed = 31;

    let native_runner = BroadcastRunner::new(graph, bits, seed);
    let mut native: Vec<Box<A>> = (0..n).map(|_| Box::new(make())).collect();
    native_runner
        .run_to_completion(&mut native, budget)
        .expect("native run");

    let params = SimulationParams::calibrated(0.0);
    let sim_runner = SimulatedBroadcastRunner::new(graph, bits, seed, params, Noise::Noiseless);
    let mut simulated: Vec<Box<A>> = (0..n).map(|_| Box::new(make())).collect();
    let report = sim_runner
        .run_to_completion(&mut simulated, budget)
        .expect("simulated run");
    assert!(
        report.stats.all_perfect(),
        "noiseless simulation must be perfect: {:?}",
        report.stats
    );

    for v in 0..n {
        assert_eq!(
            output(&native[v]),
            output(&simulated[v]),
            "node {v} diverged"
        );
    }
}

#[test]
fn bfs_native_equals_simulated_everywhere() {
    for (name, g) in graphs() {
        let n = g.node_count();
        let bits = BfsTree::required_message_bits(n);
        assert_equivalent(
            &g,
            bits,
            n + 1,
            || BfsTree::new(0),
            |a: &BfsTree| a.output(),
        );
        let _ = name;
    }
}

#[test]
fn flood_native_equals_simulated_everywhere() {
    for (_name, g) in graphs() {
        let n = g.node_count();
        assert_equivalent(
            &g,
            16,
            n + 1,
            || Flood::new(1, 0x2B, 16),
            |a: &Flood| a.output(),
        );
    }
}

#[test]
fn leader_election_native_equals_simulated() {
    for (_name, g) in graphs() {
        let n = g.node_count();
        let d = g.diameter().unwrap();
        let bits = LeaderElection::required_message_bits(n);
        assert_equivalent(
            &g,
            bits,
            d + 2,
            || LeaderElection::new(d + 1),
            |a: &LeaderElection| a.output(),
        );
    }
}

#[test]
fn mis_native_equals_simulated() {
    // Randomized algorithm: equivalence holds because node randomness is
    // seeded identically by both runners (same NodeCtx seeds) and message
    // delivery is identical.
    for (_name, g) in graphs() {
        let n = g.node_count();
        let bits = LubyMis::required_message_bits(n);
        let iters = LubyMis::suggested_iterations(n);
        assert_equivalent(
            &g,
            bits,
            LubyMis::rounds_for(iters),
            || LubyMis::new(iters),
            |a: &LubyMis| a.output(),
        );
    }
}

#[test]
fn matching_native_equals_simulated() {
    for (_name, g) in graphs() {
        let n = g.node_count();
        let bits = MaximalMatching::required_message_bits(n);
        let iters = MaximalMatching::suggested_iterations(n);
        assert_equivalent(
            &g,
            bits,
            MaximalMatching::rounds_for(iters),
            || MaximalMatching::new(iters),
            |a: &MaximalMatching| a.output(),
        );
    }
}

#[test]
fn simulation_is_deterministic_in_the_seed() {
    let g = topology::grid(3, 3).unwrap();
    let n = g.node_count();
    let bits = MaximalMatching::required_message_bits(n);
    let iters = MaximalMatching::suggested_iterations(n);
    let run = |seed: u64, eps: f64| {
        let params = SimulationParams::calibrated(eps);
        let noise = if eps == 0.0 {
            Noise::Noiseless
        } else {
            Noise::bernoulli(eps)
        };
        let runner = SimulatedBroadcastRunner::new(&g, bits, seed, params, noise);
        let mut algos: Vec<Box<MaximalMatching>> = (0..n)
            .map(|_| Box::new(MaximalMatching::new(iters)))
            .collect();
        let report = runner
            .run_to_completion(&mut algos, MaximalMatching::rounds_for(iters))
            .expect("run");
        (
            algos.iter().map(|a| a.output()).collect::<Vec<_>>(),
            report.beep_rounds,
        )
    };
    assert_eq!(run(5, 0.1), run(5, 0.1), "same seed must reproduce exactly");
    assert_eq!(run(6, 0.0), run(6, 0.0));
}
