//! Theorem 21 end-to-end: maximal matching on a wireless sensor field in
//! `O(Δ log² n)` rounds of the noisy beeping model.
//!
//! Deploys sensors uniformly in the unit square (a random geometric
//! graph — the canonical model of the sensor networks that motivated the
//! beeping model), then runs the paper's Broadcast CONGEST matching
//! algorithm (Algorithm 3) through the Algorithm 1 simulation, and
//! validates the result.
//!
//! ```sh
//! cargo run --release --example maximal_matching
//! ```

use noisy_beeps::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let epsilon = 0.05;
    let mut rng = StdRng::seed_from_u64(2024);

    // Keep sampling until the field is connected (radius 0.35 usually is).
    let (field, positions) = loop {
        let (g, pos) = topology::random_geometric(24, 0.35, &mut rng).expect("valid radius");
        if g.is_connected() {
            break (g, pos);
        }
    };
    let n = field.node_count();
    let delta = field.max_degree();
    println!(
        "sensor field: n = {n}, m = {} links, Δ = {delta}, ε = {epsilon}",
        field.edge_count()
    );

    let result = maximal_matching(&field, epsilon, 99).expect("matching over noisy beeps");

    println!("\npairings (validated maximal + symmetric):");
    let mut paired = 0;
    for (v, partner) in result.output.iter().enumerate() {
        if let Some(u) = partner {
            if v < *u {
                let (x1, y1) = positions[v];
                let (x2, y2) = positions[*u];
                println!("  {v:2} ({x1:.2},{y1:.2}) ↔ {u:2} ({x2:.2},{y2:.2})");
                paired += 2;
            }
        }
    }
    println!("  {paired}/{n} sensors matched, rest have no unmatched neighbor");

    let r = &result.report;
    println!("\ncost accounting:");
    println!("  Broadcast CONGEST rounds : {}", r.congest_rounds);
    println!(
        "  beep rounds / BC round   : {} (= Θ(Δ log n))",
        r.beep_rounds_per_congest_round
    );
    println!("  total noisy beep rounds  : {}", r.beep_rounds);
    println!("  total energy (beeps)     : {}", r.beeps);
    println!("  decode stats             : {:?}", r.stats);

    // The paper's comparison (Section 6): prior best was O(Δ⁴ log n + …).
    let prior = baseline::matching_beeps_prior(delta, n);
    let ours = baseline::matching_beeps_ours(delta, n);
    println!(
        "\ncost-model comparison at (n, Δ) = ({n}, {delta}): prior/ours ≈ {:.0}×",
        prior / ours
    );
}
