//! The Lemma 14 lower bound, made tangible.
//!
//! On `K_{Δ,Δ}` every right-side node hears the same single bit per round
//! (did *any* left node beep?), so `T` rounds convey at most `T` bits
//! about the left side's `Δ²·B`-bit input — no cleverness can beat the
//! counting. This demo runs a rate-optimal protocol on the real engine
//! with shrinking round budgets and watches recovery collapse exactly at
//! the `2^{T−Δ²B}` ceiling.
//!
//! ```sh
//! cargo run --release --example lower_bound_demo
//! ```

use noisy_beeps::core::lower_bound::{
    lemma14_round_lower_bound, transcript::tdma_local_broadcast_census,
};

fn main() {
    let delta = 2;
    let message_bits = 4;
    let input_bits = delta * delta * message_bits; // Δ²B = 16
    let trials = 400;

    println!("B-bit Local Broadcast on K_{{{delta},{delta}}} with B = {message_bits}");
    println!(
        "input entropy Δ²B = {input_bits} bits; Lemma 14 lower bound: > {} rounds\n",
        lemma14_round_lower_bound(delta, message_bits)
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>14}",
        "rounds", "conveyed", "transcripts", "ceiling 2^x", "measured"
    );

    for budget in [
        input_bits + 4,
        input_bits,
        input_bits - 1,
        input_bits - 2,
        input_bits - 3,
        input_bits - 6,
        input_bits / 2,
    ] {
        let report = tdma_local_broadcast_census(delta, message_bits, budget, trials, 11);
        let ceiling = if report.ceiling_log2 >= 0 {
            1.0
        } else {
            2f64.powi(report.ceiling_log2 as i32)
        };
        println!(
            "{:>8} {:>10} {:>12} {:>14.4} {:>14.4}",
            report.rounds_budget,
            report.recovered_bits,
            report.distinct_transcripts,
            ceiling,
            report.success_rate,
        );
    }

    println!(
        "\nreading: with T ≥ Δ²B the right side reconstructs everything; each missing \
round halves the best possible success rate, exactly as Lemma 14's 2^(T−Δ²B) ceiling dictates. \
The paper's simulation (Theorem 11) is therefore optimal: it solves the problem in O(Δ²B) beep \
rounds (via Corollary 12), matching this bound up to constants."
    );
}
