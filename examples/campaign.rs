//! Scenario-campaign quickstart: declare a sweep, run it, read the
//! report.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```
//!
//! A campaign is the cartesian product `topology families × sizes ×
//! noise levels × protocols × seeds`, executed cell by cell on the
//! sharded bitset engine. This example sweeps three families at two
//! noise levels over two protocols, prints the human table, and pulls
//! one number back out of the structured report — the same report the
//! `campaign` binary writes as schema-versioned JSON for CI's perf
//! trajectory.

use noisy_beeps::prelude::*;

fn main() {
    // The same spec format as scenarios/smoke.toml; specs can also be
    // assembled directly as plain data (see beep_scenarios::CampaignSpec).
    let spec = CampaignSpec::parse(
        r#"
        name = "quickstart"
        seeds = [1]
        epsilons = [0.0, 0.05]
        protocols = ["matching", "round_sim"]

        [[topology]]
        family = "cycle"
        sizes = [12]

        [[topology]]
        family = "torus"
        sizes = [9]

        [[topology]]
        family = "random_regular"
        sizes = [12]
        degree = 4
    "#,
    )
    .expect("spec parses");

    let report = run_campaign(&spec, &RunOptions::default()).expect("campaign runs");
    print!("{}", report.render_table());

    // The report is structured data, not just a table: aggregate and
    // per-cell numbers are directly addressable.
    let summary = report.summary();
    assert_eq!(summary.failed, 0, "all cells ran");
    let noisy_matching_rounds: usize = report
        .cells
        .iter()
        .filter(|c| c.protocol == "matching" && c.epsilon > 0.0)
        .map(|c| c.rounds)
        .sum();
    println!(
        "\nnoisy matching spent {noisy_matching_rounds} beep rounds across \
         {} families; campaign success rate {:.2}",
        spec.topologies.len(),
        summary.success_rate,
    );
    println!(
        "JSON report (first 3 lines):\n{}",
        report
            .to_json(false)
            .to_pretty()
            .lines()
            .take(3)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
