//! Quickstart: simulate one Broadcast CONGEST round over noisy beeps.
//!
//! Builds a small network, has every node broadcast a message, runs the
//! paper's Algorithm 1 on the noisy beeping channel, and shows that every
//! node decoded its neighborhood exactly — at `Θ(Δ log n)` beep rounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use noisy_beeps::prelude::*;

fn main() {
    // A 10-node cycle with a 10% noisy channel.
    let epsilon = 0.1;
    let graph = topology::cycle(10).expect("valid cycle");
    let delta = graph.max_degree();

    // Each node will broadcast a 16-bit message: its id, squared.
    let message_bits = 16;
    let outgoing: Vec<Option<Message>> = (0..10u64)
        .map(|v| {
            Some(
                MessageWriter::new()
                    .push_uint(v * v, 16)
                    .finish(message_bits),
            )
        })
        .collect();

    // The paper's simulator with calibrated constants for ε = 0.1.
    let params = SimulationParams::calibrated(epsilon);
    let simulator = BroadcastSimulator::new(params, message_bits, delta).expect("valid parameters");
    let noise = Noise::try_bernoulli(epsilon).expect("ε must lie in (0, 1/2)");
    let mut net = BeepNetwork::new(graph.clone(), noise, 42);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);

    println!("n = 10 cycle, Δ = {delta}, ε = {epsilon}");
    println!(
        "one Broadcast CONGEST round costs {} noisy beep rounds (2·c³·(Δ+1)·B with c = {})",
        simulator.rounds_per_congest_round(),
        params.expansion,
    );

    let outcome = simulator
        .simulate_round(&mut net, &outgoing, &mut rng)
        .expect("round simulation");

    println!("\nper-node decoded neighbor messages:");
    for (v, inbox) in outcome.delivered.iter().enumerate() {
        let values: Vec<u64> = inbox.iter().map(|m| m.reader().read_uint(16)).collect();
        println!("  node {v}: {values:?}");
    }
    println!("\ndecode stats: {:?}", outcome.stats);
    assert!(
        outcome.stats.all_perfect(),
        "decoding failed this run — rerun with another seed"
    );
    println!("round decoded perfectly under ε = {epsilon} noise ✓");
}
