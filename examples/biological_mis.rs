//! Maximal independent set over noisy beeps — the "biological" workload.
//!
//! The beeping model's founding biological observation (Afek et al.,
//! Science 2011, the paper's [2]) is that fly neural precursor selection
//! solves MIS with beep-like signaling. This example runs Luby's MIS
//! through the paper's noise-tolerant simulation on an irregular contact
//! graph and reports which "cells" become precursors (MIS members), under
//! substantial channel noise.
//!
//! ```sh
//! cargo run --release --example biological_mis
//! ```

use noisy_beeps::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let epsilon = 0.1;
    let mut rng = StdRng::seed_from_u64(7);
    // An irregular contact topology: sparse G(n, p).
    let tissue = topology::gnp(30, 0.12, &mut rng).expect("valid probability");
    let n = tissue.node_count();
    println!(
        "cell contact graph: n = {n}, m = {}, Δ = {}, channel noise ε = {epsilon}",
        tissue.edge_count(),
        tissue.max_degree()
    );

    let result = maximal_independent_set(&tissue, epsilon, 13).expect("MIS over noisy beeps");

    let precursors: Vec<usize> = result
        .output
        .iter()
        .enumerate()
        .filter_map(|(v, &in_set)| in_set.then_some(v))
        .collect();
    println!("\nprecursor cells (validated maximal independent set):");
    println!("  {precursors:?}  ({} of {n})", precursors.len());

    let r = &result.report;
    println!("\ncost accounting:");
    println!("  Broadcast CONGEST rounds : {}", r.congest_rounds);
    println!(
        "  beep rounds / BC round   : {}",
        r.beep_rounds_per_congest_round
    );
    println!("  total noisy beep rounds  : {}", r.beep_rounds);
    println!(
        "  decode events            : {} false-neg, {} false-pos, {} msg errors over {} rounds",
        r.stats.false_negatives, r.stats.false_positives, r.stats.message_errors, r.stats.rounds
    );
    println!(
        "\nnoise did{} disrupt the run — the simulation absorbed ε = {epsilon} at Θ(Δ log n) overhead.",
        if r.stats.all_perfect() { " not" } else { " (recoverably)" }
    );
}
