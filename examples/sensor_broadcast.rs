//! Global primitives on a sensor grid: beep-wave broadcast (`O(D + b)`)
//! and wave-based leader election (`O(D log n)`), both *native* beeping
//! protocols — no message-passing simulation involved.
//!
//! This is the other side of the library: the paper's simulation makes
//! arbitrary CONGEST algorithms runnable with beeps, but the classic
//! global primitives it cites ([19], [9], [16]) work directly in the
//! model, and far cheaper. The example runs both on a 6×6 sensor grid and
//! contrasts their cost with the simulation-based alternative.
//!
//! ```sh
//! cargo run --release --example sensor_broadcast
//! ```

use noisy_beeps::prelude::*;

fn main() {
    let grid = topology::grid(6, 6).expect("valid grid");
    let n = grid.node_count();
    let diameter = grid.diameter().expect("connected");
    println!(
        "sensor grid: n = {n}, D = {diameter}, Δ = {}",
        grid.max_degree()
    );

    // 1. Leader election: all sensors agree on a coordinator.
    let leader = beep_leader_election(&grid, diameter, 5).expect("connected graph");
    println!(
        "\nleader election: node {} elected in {} beep rounds ({} beeps of energy)",
        leader.leader, leader.rounds, leader.beeps
    );

    // 2. The leader broadcasts a 32-bit configuration word by beep waves.
    let config = BitVec::from_u64_lsb(0xCAFE_F00D, 32);
    let wave = beep_wave_broadcast(&grid, leader.leader, &config, 6).expect("connected graph");
    assert!(wave.received.iter().all(|r| r.as_ref() == Some(&config)));
    println!(
        "beep-wave broadcast: 32 bits to all {n} sensors in {} rounds (O(D + b) = {} + 32)",
        wave.rounds, diameter
    );

    // 3. Contrast: the same broadcast via the general-purpose simulation
    //    (flooding under Algorithm 1) costs Θ(D · Δ log n) — the price of
    //    generality and noise-tolerance.
    let params = SimulationParams::calibrated(0.0);
    let bits = 32;
    let runner = SimulatedBroadcastRunner::new(&grid, bits, 8, params, Noise::Noiseless);
    let mut floods: Vec<Box<algorithms::Flood>> = (0..n)
        .map(|_| Box::new(algorithms::Flood::new(leader.leader, 0xCAFE_F00D, 32)))
        .collect();
    let report = runner
        .run_to_completion(&mut floods, n)
        .expect("connected graph");
    assert!(floods.iter().all(|f| f.output() == Some(0xCAFE_F00D)));
    println!(
        "simulated flooding:  same payload in {} beep rounds ({} BC rounds × {} overhead)",
        report.beep_rounds, report.congest_rounds, report.beep_rounds_per_congest_round
    );
    println!(
        "\nbeep waves are {}× cheaper here — but the simulation tolerates noise and runs *any* algorithm.",
        report.beep_rounds / wave.rounds.max(1)
    );
}
